// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "common/crc32c.h"

#include <array>

namespace sentinel {

namespace {

/// Four 256-entry tables for slice-by-4, generated once at startup from the
/// reflected Castagnoli polynomial.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto& t = tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

}  // namespace sentinel
