// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "shmtp/host.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <new>
#include <utility>

#include "core/shard.h"
#include "net/wire.h"

namespace sentinel {
namespace shmtp {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool PidDead(uint32_t pid) {
  if (pid == 0) return false;  // Not yet published; grace period applies.
  return kill(static_cast<pid_t>(pid), 0) < 0 && errno == ESRCH;
}

}  // namespace

ShmHost::ShmHost(Options options, Env env)
    : options_(std::move(options)), env_(std::move(env)) {}

ShmHost::~ShmHost() {
  StopIntake();
  if (base_ != nullptr) {
    munmap(base_, layout_.total_bytes());
    base_ = nullptr;
    shm_unlink(options_.segment.c_str());
  }
}

RingHeader* ShmHost::header(uint32_t i) {
  return reinterpret_cast<RingHeader*>(base_ + layout_.header_offset(i));
}
char* ShmHost::job_ring(uint32_t i) { return base_ + layout_.job_offset(i); }
char* ShmHost::cpl_ring(uint32_t i) { return base_ + layout_.cpl_offset(i); }

Status ShmHost::Start() {
  if (env_.queues.empty() || env_.default_tenant == nullptr ||
      !env_.alloc_session_id) {
    return Status::InvalidArgument("shmtp host: incomplete environment");
  }
  if (options_.segment.empty() || options_.segment[0] != '/') {
    return Status::InvalidArgument(
        "shmtp segment name must start with '/': " + options_.segment);
  }
  options_.rings = std::max<uint32_t>(options_.rings, 1);
  options_.job_ring_bytes = std::max<uint64_t>(options_.job_ring_bytes, 4096);
  options_.cpl_ring_bytes = std::max<uint64_t>(options_.cpl_ring_bytes, 4096);
  options_.max_batch = std::max<uint32_t>(options_.max_batch, 1);
  layout_ = SegmentLayout{options_.rings, options_.job_ring_bytes,
                          options_.cpl_ring_bytes};

  // A segment left behind by a crashed host is dead weight — its host_pid
  // is gone and no handle can make progress against it. Replace it.
  shm_unlink(options_.segment.c_str());
  int fd = shm_open(options_.segment.c_str(), O_CREAT | O_EXCL | O_RDWR,
                    0600);
  if (fd < 0) {
    return Status::IOError("shm_open(" + options_.segment +
                           "): " + std::strerror(errno));
  }
  if (ftruncate(fd, static_cast<off_t>(layout_.total_bytes())) != 0) {
    Status s = Status::IOError("ftruncate(shm): " +
                               std::string(std::strerror(errno)));
    close(fd);
    shm_unlink(options_.segment.c_str());
    return s;
  }
  void* mapped = mmap(nullptr, layout_.total_bytes(),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) {
    shm_unlink(options_.segment.c_str());
    return Status::IOError("mmap(shm): " + std::string(std::strerror(errno)));
  }
  base_ = static_cast<char*>(mapped);

  Superblock* sb = new (base_) Superblock();
  sb->magic = kSegmentMagic;
  sb->layout_version = kLayoutVersion;
  sb->ring_count = options_.rings;
  sb->segment_bytes = layout_.total_bytes();
  sb->job_ring_bytes = options_.job_ring_bytes;
  sb->cpl_ring_bytes = options_.cpl_ring_bytes;
  sb->max_frame_body = options_.max_frame_body;
  sb->host_pid = static_cast<uint32_t>(getpid());
  rings_.clear();
  for (uint32_t i = 0; i < options_.rings; ++i) {
    new (base_ + layout_.header_offset(i)) RingHeader();
    rings_.push_back(std::make_unique<Ring>());
  }
  sb_ = sb;
  // Publish only after every header is initialised: a handle that races
  // shm_open sees kHostStarting until here and refuses to attach.
  sb_->host_state.store(kHostServing, std::memory_order_release);

  stop_.store(false, std::memory_order_relaxed);
  intake_stopped_ = false;
  intake_ = std::thread([this] { IntakeLoop(); });
  return Status::OK();
}

void ShmHost::StopIntake() {
  if (intake_stopped_) return;
  intake_stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (sb_ != nullptr) {
    sb_->host_state.store(kHostShutdown, std::memory_order_release);
    // Unpark the intake thread and any handles waiting on acks so they
    // observe the shutdown promptly.
    sb_->doorbell.exchange(kDoorbellAwake, std::memory_order_seq_cst);
    FutexWake(&sb_->doorbell, 1);
    for (uint32_t i = 0; i < options_.rings; ++i) {
      header(i)->cpl_seq.fetch_add(1, std::memory_order_seq_cst);
      FutexWake(&header(i)->cpl_seq, 1);
    }
  }
  if (intake_.joinable()) intake_.join();
}

void ShmHost::IntakeLoop() {
  uint64_t last_sweep_ms = NowMs();
  uint32_t idle = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    uint64_t now = NowMs();
    bool sweep = now - last_sweep_ms >= options_.sweep_interval_ms;
    if (sweep) last_sweep_ms = now;
    if (ScanOnce(sweep)) {
      idle = 0;
      continue;
    }
    if (++idle < options_.spin_iterations) {
      // Give a same-core producer the CPU; cheaper than a park/unpark
      // round trip when frames arrive within the spin budget.
      sched_yield();
      continue;
    }
    idle = 0;
    // Deferred admissions are waiting on a queue slot, not a producer —
    // nobody will ring the doorbell for them, so park with a short nap.
    bool deferred = false;
    for (const auto& ring : rings_) {
      if (ring->deferred_offset < ring->deferred.size()) deferred = true;
    }
    Park(deferred ? 1 : options_.sweep_interval_ms);
  }
}

bool ShmHost::ScanOnce(bool sweep_liveness) {
  bool progress = false;
  for (uint32_t i = 0; i < options_.rings; ++i) {
    if (ManageRing(i, sweep_liveness)) progress = true;
    Ring* ring = rings_[i].get();
    if (ring->session == nullptr) continue;
    if (ring->deferred_offset < ring->deferred.size()) {
      if (FlushDeferred(i, ring)) progress = true;
      // Order preserved: no fresh decode while older frames wait.
      if (ring->deferred_offset < ring->deferred.size()) continue;
    }
    if (DrainRing(i)) progress = true;
  }
  return progress;
}

bool ShmHost::ManageRing(uint32_t i, bool sweep_liveness) {
  RingHeader* rh = header(i);
  Ring* ring = rings_[i].get();
  uint32_t state = rh->state.load(std::memory_order_acquire);
  switch (state) {
    case kRingAttached:
      if (ring->session == nullptr) {
        AttachRing(i);
        return true;
      }
      if (sweep_liveness &&
          PidDead(rh->pid.load(std::memory_order_relaxed))) {
        ReclaimRing(i, "producer process died");
        return true;
      }
      return false;
    case kRingClosed:
      ReclaimRing(i, "clean detach");
      return true;
    case kRingAttaching:
      // A handle that dies between the claim CAS and kRingAttached would
      // wedge the slot; give it a grace period, then sweep it like any
      // other dead producer.
      if (ring->last_live_check_ms == 0) {
        ring->last_live_check_ms = NowMs();
      } else if (sweep_liveness &&
                 NowMs() - ring->last_live_check_ms > 200) {
        uint32_t pid = rh->pid.load(std::memory_order_relaxed);
        if (pid == 0 || PidDead(pid)) {
          ReclaimRing(i, "attach abandoned");
          return true;
        }
      }
      return false;
    default:
      ring->last_live_check_ms = 0;
      return false;
  }
}

void ShmHost::AttachRing(uint32_t i) {
  Ring* ring = rings_[i].get();
  auto session =
      std::make_shared<net::Session>(env_.alloc_session_id(), /*fd=*/-1);
  // Shm peers are born v2: the completion stream reuses the ranged
  // BatchStatusReply coalescing wholesale.
  session->version.store(net::kProtocolV2, std::memory_order_relaxed);
  session->tenant.store(env_.default_tenant, std::memory_order_release);
  session->SetFlushNotifier(
      [this, i](net::Session* s) { WriteCompletions(i, s); });
  {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->session = std::move(session);
  }
  ring->last_live_check_ms = 0;
  stats_.attaches.fetch_add(1, std::memory_order_relaxed);
}

void ShmHost::ReclaimRing(uint32_t i, const char* reason) {
  (void)reason;
  RingHeader* rh = header(i);
  Ring* ring = rings_[i].get();
  {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->session != nullptr) {
      // Queued-but-unprocessed frames from this tenancy die here: workers
      // skip closed sessions (never applying them), while their quota
      // charges still credit back through ChargeRelease. Frames already
      // applied stay applied — the handle's contract is at-most-once for
      // anything it never saw acked.
      ring->session->closed.store(true, std::memory_order_release);
      ring->session.reset();
    }
    // Cursor reset *is* the torn-tail truncation: bytes a dying producer
    // wrote past its committed job_tail were never observable, and now
    // their positions are recycled. Done under ring->mu so no stale
    // WriteCompletions can interleave with the completion-cursor reset.
    rh->job_head.store(0, std::memory_order_relaxed);
    rh->job_tail.store(0, std::memory_order_relaxed);
    rh->cpl_head.store(0, std::memory_order_relaxed);
    rh->cpl_tail.store(0, std::memory_order_relaxed);
    rh->cpl_overflow.store(0, std::memory_order_relaxed);
    rh->pid.store(0, std::memory_order_relaxed);
    rh->state.store(kRingFree, std::memory_order_release);
  }
  ring->deferred.clear();  // Never charged; nothing to credit back.
  ring->deferred_offset = 0;
  ring->last_live_check_ms = 0;
  stats_.reclaims.fetch_add(1, std::memory_order_relaxed);
}

bool ShmHost::TryCharge(const std::shared_ptr<net::Session>& session,
                        net::IngressItem* item) {
  net::TenantState* tenant =
      session->tenant.load(std::memory_order_acquire);
  if (options_.max_inflight_raises != 0 &&
      session->inflight_raises.load(std::memory_order_relaxed) >=
          options_.max_inflight_raises) {
    return false;
  }
  if (options_.tenant_max_inflight_raises != 0 &&
      tenant->inflight_raises.load(std::memory_order_relaxed) >=
          options_.tenant_max_inflight_raises) {
    return false;
  }
  session->inflight_raises.fetch_add(1, std::memory_order_relaxed);
  tenant->inflight_raises.fetch_add(1, std::memory_order_relaxed);
  item->charged_tenant = tenant;
  return true;
}

bool ShmHost::FlushDeferred(uint32_t i, Ring* ring) {
  (void)i;
  auto& d = ring->deferred;
  bool progress = false;
  while (ring->deferred_offset < d.size()) {
    size_t begin = ring->deferred_offset;
    size_t shard = d[begin].shard;
    // Charge and stage the longest same-shard run quota allows; admission
    // happens under one queue-lock acquisition.
    std::vector<net::IngressItem> batch;
    size_t end = begin;
    while (end < d.size() && d[end].shard == shard) {
      if (!TryCharge(ring->session, &d[end].item)) break;
      batch.push_back(std::move(d[end].item));
      ++end;
    }
    if (batch.empty()) return progress;  // Quota at cap: defer, uncharged.
    size_t accepted = env_.queues[shard]->TryPushBatch(&batch);
    if (accepted > 0) {
      progress = true;
      stats_.frames.fetch_add(accepted, std::memory_order_relaxed);
      stats_.batches.fetch_add(1, std::memory_order_relaxed);
    }
    if (!batch.empty()) {
      // Queue full mid-run: credit the un-admitted remainder back and put
      // it where it was — lossless deferral, order intact.
      for (size_t k = 0; k < batch.size(); ++k) {
        net::IngressItem& item = batch[k];
        if (item.charged_tenant != nullptr) {
          item.session->inflight_raises.fetch_sub(1,
                                                  std::memory_order_relaxed);
          item.charged_tenant->inflight_raises.fetch_sub(
              1, std::memory_order_relaxed);
          item.charged_tenant = nullptr;
        }
        d[begin + accepted + k].item = std::move(item);
      }
      ring->deferred_offset = begin + accepted;
      return progress;
    }
    ring->deferred_offset = end;
  }
  d.clear();
  ring->deferred_offset = 0;
  return progress;
}

bool ShmHost::DrainRing(uint32_t i) {
  RingHeader* rh = header(i);
  Ring* ring = rings_[i].get();
  uint64_t head = rh->job_head.load(std::memory_order_relaxed);
  // Acquire pairs with the handle's commit store: everything at positions
  // < job_tail is fully written.
  uint64_t tail = rh->job_tail.load(std::memory_order_acquire);
  if (head == tail) return false;
  const char* jr = job_ring(i);
  const uint64_t cap = options_.job_ring_bytes;
  const uint32_t max_record =
      static_cast<uint32_t>(net::kFrameHeaderSize) + options_.max_frame_body;

  uint32_t decoded = 0;
  while (head != tail && decoded < options_.max_batch) {
    uint64_t avail = tail - head;
    uint32_t len = 0;
    if (avail < kJobRecordPrefix) {
      ReclaimRing(i, "truncated record prefix");
      return true;
    }
    RingReadBytes(jr, cap, head, &len, sizeof(len));
    if (len < net::kFrameHeaderSize || len > max_record ||
        kJobRecordPrefix + len > avail) {
      // A committed record can never be torn (commit follows the write),
      // so a bad length means a buggy producer. Kill the ring.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      ReclaimRing(i, "malformed record length");
      return true;
    }
    std::string bytes(len, '\0');
    RingReadBytes(jr, cap, head + kJobRecordPrefix, bytes.data(), len);
    head += kJobRecordPrefix + len;
    ++decoded;

    net::Frame frame;
    size_t consumed = 0;
    Status error;
    net::DecodeProgress prog = net::TryDecodeFrame(
        bytes, options_.max_frame_body, &frame, &consumed, &error);
    if (prog != net::DecodeProgress::kFrame || consumed != len) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      ReclaimRing(i, "undecodable frame");
      return true;
    }
    if (frame.type != net::FrameType::kRaiseEvent) {
      // The job ring is raise-only by contract. Ack the stray frame
      // immediately; note this ack can overtake raise acks still in
      // flight (documented — mixed traffic is a handle bug).
      ring->session->Reply(
          net::FrameType::kStatusReply,
          net::StatusReplyMsg::FromStatus(Status::InvalidArgument(
              "shmtp job ring carries raise frames only")));
      continue;
    }
    uint64_t oid = 0;
    std::string class_name;
    size_t shard = 0;
    if (env_.queues.size() > 1 &&
        net::PeekRaiseRouting(frame.body, &oid, &class_name)) {
      shard = ShardIndexForRoute(class_name, oid, env_.queues.size());
    }
    net::IngressItem item;
    item.session = ring->session;
    item.frame = std::move(frame);
    ring->deferred.push_back(Ring::Pending{shard, std::move(item)});
  }
  // Space is reusable only now that every record is copied out.
  rh->job_head.store(head, std::memory_order_release);
  FlushDeferred(i, ring);
  return true;
}

void ShmHost::WriteCompletions(uint32_t i, net::Session* session) {
  RingHeader* rh = header(i);
  Ring* ring = rings_[i].get();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->session.get() != session) return;  // Reclaimed: stale tenancy.
  std::deque<std::string> chunks;
  session->TakeOutput(&chunks);
  if (chunks.empty()) return;
  char* cr = cpl_ring(i);
  const uint64_t cap = options_.cpl_ring_bytes;
  uint64_t tail = rh->cpl_tail.load(std::memory_order_relaxed);
  bool overflow = false;
  for (const std::string& chunk : chunks) {
    uint64_t inflight =
        tail - rh->cpl_head.load(std::memory_order_acquire);
    if (cap - inflight < chunk.size()) {
      // The stream cannot skip bytes (frames would tear), so a handle
      // that let the region fill is beyond repair: poison it.
      overflow = true;
      break;
    }
    RingWriteBytes(cr, cap, tail, chunk.data(), chunk.size());
    tail += chunk.size();
  }
  rh->cpl_tail.store(tail, std::memory_order_release);
  if (overflow) rh->cpl_overflow.store(1, std::memory_order_release);
  rh->cpl_seq.fetch_add(1, std::memory_order_seq_cst);
  FutexWake(&rh->cpl_seq, 1);
}

void ShmHost::Park(uint32_t timeout_ms) {
  // Sleeping-barber handshake, the cross-process double of the
  // IngressQueue shutdown-drain fix: announce the park *first*, then
  // re-scan every ring. A producer that commits after the re-scan must
  // observe doorbell == kDoorbellParked (seq_cst on both sides) and owns
  // the FutexWake; a producer that commits before it is caught by the
  // re-scan. No interleaving strands a committed frame.
  sb_->doorbell.store(kDoorbellParked, std::memory_order_seq_cst);
  for (uint32_t i = 0; i < options_.rings; ++i) {
    RingHeader* rh = header(i);
    if (rh->job_tail.load(std::memory_order_seq_cst) !=
            rh->job_head.load(std::memory_order_relaxed) ||
        rh->state.load(std::memory_order_acquire) == kRingClosed) {
      sb_->doorbell.store(kDoorbellAwake, std::memory_order_seq_cst);
      return;
    }
  }
  if (stop_.load(std::memory_order_acquire)) {
    sb_->doorbell.store(kDoorbellAwake, std::memory_order_seq_cst);
    return;
  }
  stats_.parks.fetch_add(1, std::memory_order_relaxed);
  struct timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  int rc = FutexWait(&sb_->doorbell, kDoorbellParked, &ts);
  if (rc == 0 || errno == EAGAIN) {
    stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
  }
  sb_->doorbell.store(kDoorbellAwake, std::memory_order_seq_cst);
}

}  // namespace shmtp
}  // namespace sentinel
