// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Shared-memory transport (shmtp) segment layout.
//
// One gateway host process owns a POSIX shm segment; local producer
// processes ("handles") attach and claim one ring slot each. Every byte
// both sides touch concurrently lives in this file's structs, so the
// cross-process protocol is auditable in one place:
//
//   Superblock | RingHeader[ring_count] | per-ring { job ring | cpl ring }
//
// Job ring: an SPSC byte ring of length-prefixed wire frames, produced by
// the handle and consumed by the host. The producer writes the record
// fully, *then* publishes it by storing job_tail — so a handle that dies
// mid-write leaves a torn record past the committed tail that the host, by
// construction, never reads ("truncate torn tail" is a cursor reset, not a
// repair). Completion ring: the mirror-image SPSC byte stream of reply
// frames (the same kStatusReply / ranged kBatchStatusReply encodings TCP
// peers receive), produced by the host and consumed by the handle.
//
// Wakeup is futex-based and syscall-free on the hot path: producers wake
// the host through the superblock doorbell only on an empty->non-empty
// edge while the host is parked (DESIGN.md §14 walks the Dekker-style
// handshake); the host wakes one handle through its ring's cpl_seq word.
// Futexes are non-PRIVATE because the waiter and waker are different
// processes mapping the same physical page.
//
// All cross-process atomics are lock-free u32/u64 specializations, which
// glibc/Linux implement address-free — required, since the segment maps at
// different addresses in each process.

#ifndef SENTINEL_SHMTP_LAYOUT_H_
#define SENTINEL_SHMTP_LAYOUT_H_

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <ctime>

namespace sentinel {
namespace shmtp {

/// First superblock word; doubles as an endianness/ABI sentinel.
constexpr uint64_t kSegmentMagic = 0x53484d5450303141ull;  // "SHMTP01A"

/// Bumped on any incompatible change to the structs below. A handle whose
/// layout_version differs from the mapped segment's must refuse to attach.
constexpr uint32_t kLayoutVersion = 1;

/// Ring-slot lifecycle, owned jointly: handles CAS kFree -> kAttaching and
/// store kAttached / kClosed; only the host stores kFree (after reclaim).
enum RingState : uint32_t {
  kRingFree = 0,       ///< Claimable by any handle.
  kRingAttaching = 1,  ///< A handle won the CAS and is filling in pid/epoch.
  kRingAttached = 2,   ///< Live: host serves it, pid-liveness applies.
  kRingClosed = 3,     ///< Handle detached cleanly; host reclaims.
};

/// Host lifecycle, published for handles.
enum HostState : uint32_t {
  kHostStarting = 0,
  kHostServing = 1,
  kHostShutdown = 2,  ///< Attaches refused; pending acks may still drain.
};

/// Doorbell values (a futex word in the superblock).
constexpr uint32_t kDoorbellParked = 0;
constexpr uint32_t kDoorbellAwake = 1;

struct Superblock {
  uint64_t magic = 0;
  uint32_t layout_version = 0;
  uint32_t ring_count = 0;
  uint64_t segment_bytes = 0;
  uint64_t job_ring_bytes = 0;  ///< Per ring, power-of-two not required.
  uint64_t cpl_ring_bytes = 0;  ///< Per ring.
  uint32_t max_frame_body = 0;  ///< Host's frame-body ceiling.
  uint32_t host_pid = 0;
  std::atomic<uint32_t> host_state{kHostStarting};
  /// The host's sleeping-barber word: kDoorbellAwake while the host is
  /// scanning rings, kDoorbellParked once it has armed a futex park.
  /// A producer that flips it Parked -> Awake owns the FutexWake.
  std::atomic<uint32_t> doorbell{kDoorbellAwake};
  /// Monotonic attach counter; each claimed ring records its value, so a
  /// ring slot's reuse is distinguishable from its previous tenancy.
  std::atomic<uint64_t> attach_epoch{0};
};

/// One ring slot's shared header. Cursors are monotonically increasing
/// byte counts (never wrapped; positions reduce mod the ring size), so
/// `tail - head` is always the exact number of unconsumed bytes.
struct RingHeader {
  std::atomic<uint32_t> state{kRingFree};
  std::atomic<uint32_t> pid{0};      ///< Producer pid while attached.
  std::atomic<uint64_t> epoch{0};    ///< attach_epoch at claim time.

  // Job ring (producer: handle, consumer: host).
  std::atomic<uint64_t> job_head{0};  ///< Host's read cursor.
  std::atomic<uint64_t> job_tail{0};  ///< Handle's commit cursor.

  // Completion ring (producer: host, consumer: handle).
  std::atomic<uint64_t> cpl_head{0};  ///< Handle's read cursor.
  std::atomic<uint64_t> cpl_tail{0};  ///< Host's commit cursor.
  /// Futex word the handle parks on; the host bumps it after every
  /// cpl_tail advance (the value carries no meaning beyond "changed").
  std::atomic<uint32_t> cpl_seq{0};
  /// Host sets this when a completion did not fit even an empty ring or
  /// the stream fell irrecoverably behind; fatal for the handle.
  std::atomic<uint32_t> cpl_overflow{0};
};

static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "shmtp requires address-free u32 atomics");
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shmtp requires address-free u64 atomics");

/// Bytes of length prefix before each job-ring record's frame bytes.
constexpr size_t kJobRecordPrefix = sizeof(uint32_t);

constexpr uint64_t AlignUp(uint64_t v, uint64_t a) {
  return (v + a - 1) / a * a;
}

constexpr uint64_t kCacheLine = 64;
/// RingHeader stride: two cache lines so neighbouring producers' cursor
/// traffic does not false-share.
constexpr uint64_t kRingHeaderStride = AlignUp(sizeof(RingHeader), 128);

/// Byte offsets of every region, derived purely from the three sizing
/// parameters so host and handle compute identical maps.
struct SegmentLayout {
  uint32_t ring_count = 0;
  uint64_t job_ring_bytes = 0;
  uint64_t cpl_ring_bytes = 0;

  uint64_t headers_offset() const {
    return AlignUp(sizeof(Superblock), kCacheLine);
  }
  uint64_t header_offset(uint32_t i) const {
    return headers_offset() + uint64_t{i} * kRingHeaderStride;
  }
  uint64_t data_offset() const {
    return AlignUp(header_offset(ring_count), kCacheLine);
  }
  uint64_t ring_data_stride() const {
    return AlignUp(job_ring_bytes, kCacheLine) +
           AlignUp(cpl_ring_bytes, kCacheLine);
  }
  uint64_t job_offset(uint32_t i) const {
    return data_offset() + uint64_t{i} * ring_data_stride();
  }
  uint64_t cpl_offset(uint32_t i) const {
    return job_offset(i) + AlignUp(job_ring_bytes, kCacheLine);
  }
  uint64_t total_bytes() const {
    return data_offset() + uint64_t{ring_count} * ring_data_stride();
  }
};

/// Copies `n` bytes into a byte ring of capacity `cap` at monotonic
/// position `pos`, splitting across the wrap when needed. The caller is
/// responsible for having checked free space.
inline void RingWriteBytes(char* ring, uint64_t cap, uint64_t pos,
                           const void* src, size_t n) {
  uint64_t at = pos % cap;
  size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - at));
  std::memcpy(ring + at, src, first);
  if (first < n) {
    std::memcpy(ring, static_cast<const char*>(src) + first, n - first);
  }
}

/// Mirror of RingWriteBytes for the consumer side.
inline void RingReadBytes(const char* ring, uint64_t cap, uint64_t pos,
                          void* dst, size_t n) {
  uint64_t at = pos % cap;
  size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - at));
  std::memcpy(dst, ring + at, first);
  if (first < n) {
    std::memcpy(static_cast<char*>(dst) + first, ring, n - first);
  }
}

/// FUTEX_WAIT on `*word` while it equals `expected`, up to `timeout`
/// (nullptr = forever). Returns 0 on wake, -1 with errno on
/// EAGAIN (value already changed) / ETIMEDOUT / EINTR — all of which the
/// callers treat as "recheck state".
inline int FutexWait(std::atomic<uint32_t>* word, uint32_t expected,
                     const struct timespec* timeout) {
  return static_cast<int>(syscall(SYS_futex, reinterpret_cast<uint32_t*>(word),
                                  FUTEX_WAIT, expected, timeout, nullptr, 0));
}

/// Wakes up to `count` waiters parked on `*word`.
inline int FutexWake(std::atomic<uint32_t>* word, int count) {
  return static_cast<int>(syscall(SYS_futex, reinterpret_cast<uint32_t*>(word),
                                  FUTEX_WAKE, count, nullptr, nullptr, 0));
}

}  // namespace shmtp
}  // namespace sentinel

#endif  // SENTINEL_SHMTP_LAYOUT_H_
