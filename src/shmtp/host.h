// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// ShmHost: the gateway-side end of the shared-memory local transport.
//
// The host owns the segment (create/initialise/unlink) and runs one intake
// thread that scans the per-producer job rings, decodes committed frames,
// and feeds them into the *same* per-shard IngressQueues the TCP gateway
// uses — so sharding, admission quotas, worker ordering, metrics, and ack
// batching are shared, not reimplemented. Each attached ring is fronted by
// a socketless net::Session (fd = -1, protocol v2): workers ack through
// the normal AckBatcher path, the session's flush notifier lands the
// encoded reply frames in the ring's completion region, and the handle
// decodes them exactly as a TCP client would.
//
// Flow control is lossless by deferral: when a shard queue is full or an
// admission quota is at its cap, the host simply stops advancing that
// ring's job_head — the producer sees a full ring and blocks, instead of
// receiving interleaved rejections that would reorder acks.
//
// Crash safety: a handle that dies leaves at worst a torn record past its
// committed job_tail (never visible to the host) and a charged-but-unacked
// run of admitted frames. The host's periodic pid-liveness sweep reclaims
// the ring: the fronting session is marked closed (workers skip its queued
// items, quota charges still credit back), cursors are reset, and the slot
// returns to kRingFree for the next attacher.

#ifndef SENTINEL_SHMTP_HOST_H_
#define SENTINEL_SHMTP_HOST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/ingress_queue.h"
#include "net/session.h"
#include "shmtp/layout.h"

namespace sentinel {
namespace shmtp {

class ShmHost {
 public:
  struct Options {
    /// shm_open name, e.g. "/sentinel-gw.1234". Must start with '/'.
    std::string segment;
    uint32_t rings = 4;
    uint64_t job_ring_bytes = 1u << 20;
    uint64_t cpl_ring_bytes = 256u << 10;
    uint32_t max_frame_body = 4u << 20;
    /// Frames decoded from one ring per scan before moving on (fairness).
    uint32_t max_batch = 256;
    /// Admission quotas, mirrored from ServerOptions (0 = unlimited).
    uint32_t max_inflight_raises = 0;
    uint32_t tenant_max_inflight_raises = 0;
    /// Pid-liveness sweep cadence; also the park timeout while idle.
    uint32_t sweep_interval_ms = 20;
    /// Empty-scan spins before arming a futex park.
    uint32_t spin_iterations = 512;
  };

  /// Hooks into the owning gateway. All queues/pointers must outlive the
  /// host (the server guarantees this by stopping intake before tearing
  /// either down).
  struct Env {
    std::vector<net::IngressQueue*> queues;  ///< One per raise shard.
    net::TenantState* default_tenant = nullptr;
    std::function<uint64_t()> alloc_session_id;
  };

  /// Intake counters, readable live (relaxed) by the server's stats path.
  struct Stats {
    std::atomic<uint64_t> frames{0};    ///< Raise frames admitted.
    std::atomic<uint64_t> batches{0};   ///< Shard-queue push batches.
    std::atomic<uint64_t> parks{0};     ///< Futex parks armed.
    std::atomic<uint64_t> wakeups{0};   ///< Parks ended by a producer wake.
    std::atomic<uint64_t> attaches{0};  ///< Rings claimed by handles.
    std::atomic<uint64_t> reclaims{0};  ///< Rings reclaimed (crash or close).
    std::atomic<uint64_t> protocol_errors{0};  ///< Rings killed for garbage.
  };

  ShmHost(Options options, Env env);
  ~ShmHost();

  ShmHost(const ShmHost&) = delete;
  ShmHost& operator=(const ShmHost&) = delete;

  /// Creates + maps + initialises the segment and starts the intake
  /// thread. A stale segment with the same name (a previous host that
  /// crashed) is unlinked first.
  Status Start();

  /// Stops the intake thread and marks the segment kHostShutdown so
  /// handles stop pushing. Completion writes from gateway workers remain
  /// valid until destruction — call this *before* shutting the ingress
  /// queues down, destroy after the workers are joined.
  void StopIntake();

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  /// Host-private (non-shared) per-ring state.
  struct Ring {
    /// One decoded frame awaiting admission, with its precomputed shard.
    struct Pending {
      size_t shard = 0;
      net::IngressItem item;
    };

    /// Guards `session` and serializes completion-region writes against
    /// reclaim. Worker flush notifiers take it; the intake thread takes it
    /// only on attach/reclaim transitions.
    std::mutex mu;
    std::shared_ptr<net::Session> session;
    /// Decoded-but-not-admitted frames (deferred on backpressure/quota).
    /// Their job-ring bytes are already consumed; admission order is kept.
    std::vector<Pending> deferred;
    size_t deferred_offset = 0;  ///< Items before this index were admitted.
    uint64_t last_live_check_ms = 0;
  };

  RingHeader* header(uint32_t i);
  char* job_ring(uint32_t i);
  char* cpl_ring(uint32_t i);

  void IntakeLoop();
  /// One pass over every ring; returns true when any progress was made.
  bool ScanOnce(bool sweep_liveness);
  /// Handles state transitions for ring `i`; true on progress.
  bool ManageRing(uint32_t i, bool sweep_liveness);
  /// Decodes + admits committed frames from ring `i`; true on progress.
  bool DrainRing(uint32_t i);
  /// Tries to push `ring.deferred` items to their shard queues, in order.
  /// True when everything pending was admitted.
  bool FlushDeferred(uint32_t i, Ring* ring);
  /// Admission-charges `item`'s session/tenant unless a quota is at cap;
  /// false = defer (nothing charged).
  bool TryCharge(const std::shared_ptr<net::Session>& session,
                 net::IngressItem* item);
  void AttachRing(uint32_t i);
  void ReclaimRing(uint32_t i, const char* reason);
  /// Flush notifier target: copies `session`'s queued reply frames into
  /// ring `i`'s completion region and wakes the handle.
  void WriteCompletions(uint32_t i, net::Session* session);
  /// Parks on the doorbell after re-scanning; returns after a wake or
  /// `timeout_ms`.
  void Park(uint32_t timeout_ms);

  Options options_;
  Env env_;
  SegmentLayout layout_;
  char* base_ = nullptr;  ///< mmap base (nullptr until Start succeeds).
  Superblock* sb_ = nullptr;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::thread intake_;
  std::atomic<bool> stop_{false};
  bool intake_stopped_ = false;
  Stats stats_;
};

}  // namespace shmtp
}  // namespace sentinel

#endif  // SENTINEL_SHMTP_HOST_H_
