// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "shmtp/handle.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace sentinel {
namespace shmtp {

namespace {

bool PidDead(uint32_t pid) {
  return pid != 0 && kill(static_cast<pid_t>(pid), 0) < 0 && errno == ESRCH;
}

}  // namespace

Result<std::unique_ptr<ShmHandle>> ShmHandle::Attach(
    const std::string& segment) {
  int fd = shm_open(segment.c_str(), O_RDWR, 0);
  if (fd < 0) {
    return Status::NotFound("shm_open(" + segment +
                            "): " + std::strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0 ||
      static_cast<uint64_t>(st.st_size) < sizeof(Superblock)) {
    close(fd);
    return Status::Corruption("shmtp segment too small: " + segment);
  }
  uint64_t map_bytes = static_cast<uint64_t>(st.st_size);
  void* mapped =
      mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) {
    return Status::IOError("mmap(shm): " + std::string(std::strerror(errno)));
  }
  char* base = static_cast<char*>(mapped);
  Superblock* sb = reinterpret_cast<Superblock*>(base);

  Status reject = Status::OK();
  SegmentLayout layout;
  if (sb->magic != kSegmentMagic) {
    reject = Status::Corruption("shmtp segment magic mismatch");
  } else if (sb->layout_version != kLayoutVersion) {
    reject = Status::FailedPrecondition(
        "shmtp layout version " + std::to_string(sb->layout_version) +
        " != supported " + std::to_string(kLayoutVersion));
  } else if (sb->host_state.load(std::memory_order_acquire) !=
             kHostServing) {
    reject = Status::FailedPrecondition("shmtp host is not serving");
  } else if (PidDead(sb->host_pid)) {
    reject = Status::FailedPrecondition("shmtp host process is gone");
  } else {
    layout = SegmentLayout{sb->ring_count, sb->job_ring_bytes,
                           sb->cpl_ring_bytes};
    if (layout.total_bytes() > map_bytes ||
        sb->segment_bytes != layout.total_bytes()) {
      reject = Status::Corruption("shmtp segment size inconsistent");
    }
  }
  if (!reject.ok()) {
    munmap(mapped, map_bytes);
    return reject;
  }

  for (uint32_t i = 0; i < sb->ring_count; ++i) {
    RingHeader* rh =
        reinterpret_cast<RingHeader*>(base + layout.header_offset(i));
    uint32_t expect = kRingFree;
    if (!rh->state.compare_exchange_strong(expect, kRingAttaching,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    rh->pid.store(static_cast<uint32_t>(getpid()),
                  std::memory_order_relaxed);
    rh->epoch.store(
        sb->attach_epoch.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    // The host resets all cursors before releasing a slot to kRingFree,
    // so this tenancy starts from a clean stream on both directions.
    rh->state.store(kRingAttached, std::memory_order_release);

    auto handle = std::unique_ptr<ShmHandle>(new ShmHandle());
    handle->sb_ = sb;
    handle->rh_ = rh;
    handle->base_ = base;
    handle->job_ = base + layout.job_offset(i);
    handle->cpl_ = base + layout.cpl_offset(i);
    handle->map_bytes_ = map_bytes;
    handle->job_cap_ = sb->job_ring_bytes;
    handle->cpl_cap_ = sb->cpl_ring_bytes;
    handle->ring_ = i;
    return handle;
  }
  munmap(mapped, map_bytes);
  return Status::ResourceExhausted("shmtp: every producer ring is claimed");
}

ShmHandle::~ShmHandle() {
  if (base_ == nullptr) return;
  if (!abandon_) {
    rh_->state.store(kRingClosed, std::memory_order_release);
    // Ring the doorbell so an idle host reclaims the slot promptly.
    if (sb_->doorbell.exchange(kDoorbellAwake, std::memory_order_seq_cst) ==
        kDoorbellParked) {
      FutexWake(&sb_->doorbell, 1);
    }
  }
  munmap(base_, map_bytes_);
}

Status ShmHandle::PushFrame(std::string_view frame) {
  if (sb_->host_state.load(std::memory_order_acquire) != kHostServing) {
    return Status::FailedPrecondition("shmtp host is not serving");
  }
  const uint64_t need = kJobRecordPrefix + frame.size();
  if (need > job_cap_) {
    return Status::InvalidArgument("frame larger than the shmtp job ring");
  }
  const uint64_t tail = rh_->job_tail.load(std::memory_order_relaxed);
  // Acquire pairs with the host's post-copy head advance: space at
  // positions < head is no longer being read.
  const uint64_t head = rh_->job_head.load(std::memory_order_acquire);
  if (job_cap_ - (tail - head) < need) {
    return Status::ResourceExhausted("shmtp job ring full");
  }
  const uint32_t len = static_cast<uint32_t>(frame.size());
  RingWriteBytes(job_, job_cap_, tail, &len, sizeof(len));
  RingWriteBytes(job_, job_cap_, tail + kJobRecordPrefix, frame.data(),
                 frame.size());
  // The commit: everything before it is invisible to the host, so a crash
  // up to here leaves only an unreachable torn record. seq_cst so the
  // doorbell check below cannot be reordered ahead of the publication
  // (the host's park runs the same fence-then-recheck from the other
  // side — DESIGN.md §14).
  rh_->job_tail.store(tail + need, std::memory_order_seq_cst);
  if (rh_->job_head.load(std::memory_order_seq_cst) == tail) {
    // Empty -> non-empty edge: the host may be parked (or mid-park). Only
    // the producer that flips the doorbell back to Awake owns the wake
    // syscall; everyone else sees Awake and stays syscall-free.
    if (sb_->doorbell.load(std::memory_order_seq_cst) == kDoorbellParked &&
        sb_->doorbell.exchange(kDoorbellAwake,
                               std::memory_order_seq_cst) ==
            kDoorbellParked) {
      FutexWake(&sb_->doorbell, 1);
    }
  }
  return Status::OK();
}

Status ShmHandle::ReadAckFrame(net::Frame* frame,
                               std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (!inbuf_.empty()) {
      size_t consumed = 0;
      Status error;
      net::DecodeProgress prog = net::TryDecodeFrame(
          inbuf_, sb_->max_frame_body, frame, &consumed, &error);
      if (prog == net::DecodeProgress::kFrame) {
        inbuf_.erase(0, consumed);
        return Status::OK();
      }
      if (prog == net::DecodeProgress::kError) return error;
    }
    const uint64_t head = rh_->cpl_head.load(std::memory_order_relaxed);
    const uint64_t tail = rh_->cpl_tail.load(std::memory_order_acquire);
    if (tail != head) {
      const size_t n = static_cast<size_t>(tail - head);
      const size_t old = inbuf_.size();
      inbuf_.resize(old + n);
      RingReadBytes(cpl_, cpl_cap_, head, inbuf_.data() + old, n);
      rh_->cpl_head.store(tail, std::memory_order_release);
      continue;
    }
    if (rh_->cpl_overflow.load(std::memory_order_acquire) != 0) {
      return Status::IOError(
          "shmtp completion region overflowed (handle fell behind)");
    }
    if (sb_->host_state.load(std::memory_order_acquire) == kHostShutdown) {
      return Status::Aborted("shmtp host shut down");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      if (PidDead(sb_->host_pid)) {
        return Status::IOError("shmtp host process died");
      }
      return Status::Busy("timed out waiting for a shmtp completion");
    }
    const uint32_t seq = rh_->cpl_seq.load(std::memory_order_acquire);
    // Recheck after capturing the futex value: the host stores cpl_tail
    // before bumping cpl_seq, so either the new bytes are visible here or
    // the bump makes the wait below return immediately.
    if (rh_->cpl_tail.load(std::memory_order_seq_cst) != head) continue;
    auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const uint64_t wait_ms =
        std::min<uint64_t>(static_cast<uint64_t>(remain.count()) + 1, 100);
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(wait_ms / 1000);
    ts.tv_nsec = static_cast<long>(wait_ms % 1000) * 1000000L;
    FutexWait(&rh_->cpl_seq, seq, &ts);
  }
}

void ShmHandle::TearFrameForTest(std::string_view frame) {
  const uint64_t tail = rh_->job_tail.load(std::memory_order_relaxed);
  const uint32_t len = static_cast<uint32_t>(frame.size());
  RingWriteBytes(job_, job_cap_, tail, &len, sizeof(len));
  RingWriteBytes(job_, job_cap_, tail + kJobRecordPrefix, frame.data(),
                 frame.size() / 2);
  // No job_tail store: the record stays past the committed tail, exactly
  // as if the producer died between the copy and the commit.
}

}  // namespace shmtp
}  // namespace sentinel
