// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// ShmHandle: the producer-side end of the shared-memory local transport.
//
// A handle attaches to a host's segment, claims one job/completion ring
// pair, and pushes fully-encoded wire frames (the same bytes a TCP client
// would write to its socket). Acks come back as wire frames too — decode
// them with the ordinary framing machinery. The hot path (PushFrame with
// ring space, ReadAckFrame with bytes pending) performs no syscalls and no
// allocation beyond the caller's buffers.
//
// Not thread safe: one handle per producer thread, like a Connection.

#ifndef SENTINEL_SHMTP_HANDLE_H_
#define SENTINEL_SHMTP_HANDLE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"
#include "shmtp/layout.h"

namespace sentinel {
namespace shmtp {

class ShmHandle {
 public:
  /// Maps `segment` and claims a free ring. Fails (without side effects)
  /// when the segment does not exist, was built by an incompatible layout
  /// version, the host is not serving (or its process died), or every
  /// ring slot is taken — callers treat any failure as "use TCP".
  static Result<std::unique_ptr<ShmHandle>> Attach(const std::string& segment);

  /// Clean detach: marks the ring kRingClosed (the host reclaims it) —
  /// unless AbandonForTest() was called, in which case the mapping just
  /// drops dead, exactly like a crash.
  ~ShmHandle();

  ShmHandle(const ShmHandle&) = delete;
  ShmHandle& operator=(const ShmHandle&) = delete;

  /// Publishes one complete wire frame (header + body, pre-encoded).
  /// ResourceExhausted when the ring lacks space — drain acks and retry;
  /// FailedPrecondition once the host stopped serving. The frame is
  /// invisible to the host until the final commit store, so a crash
  /// anywhere inside this call never exposes a torn record.
  Status PushFrame(std::string_view frame);

  /// Decodes the next reply frame from the completion stream, waiting up
  /// to `timeout`. Busy on timeout (with the host still alive), IOError
  /// when the host process died or the completion region overflowed,
  /// Aborted when the host shut down with nothing left to read.
  Status ReadAckFrame(net::Frame* frame, std::chrono::milliseconds timeout);

  /// Ring slot this handle claimed (stable for its lifetime).
  uint32_t ring_index() const { return ring_; }
  /// Host's frame-body ceiling, from the superblock.
  uint32_t max_frame_body() const { return sb_->max_frame_body; }
  /// Job ring capacity in bytes (bounds the largest pushable frame).
  uint64_t job_ring_bytes() const { return sb_->job_ring_bytes; }

  // --- Test hooks ------------------------------------------------------------

  /// Writes `frame`'s length prefix and only the first half of its bytes
  /// past the committed tail, *without* committing — the exact footprint
  /// of a producer killed mid-PushFrame.
  void TearFrameForTest(std::string_view frame);

  /// Disables the clean detach in the destructor, so tearing the handle
  /// down in-process looks to the host like a vanished producer (the ring
  /// stays kRingAttached with this process's pid).
  void AbandonForTest() { abandon_ = true; }

 private:
  ShmHandle() = default;

  Superblock* sb_ = nullptr;
  RingHeader* rh_ = nullptr;
  char* base_ = nullptr;
  char* job_ = nullptr;        ///< This ring's job-byte region.
  char* cpl_ = nullptr;        ///< This ring's completion-byte region.
  uint64_t map_bytes_ = 0;
  uint64_t job_cap_ = 0;
  uint64_t cpl_cap_ = 0;
  uint32_t ring_ = 0;
  bool abandon_ = false;
  std::string inbuf_;          ///< Completion bytes past the last frame.
};

}  // namespace shmtp
}  // namespace sentinel

#endif  // SENTINEL_SHMTP_HANDLE_H_
