// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Wire protocol of the Sentinel event gateway.
//
// The paper's event interface propagates primitive events asynchronously of
// the synchronous call interface; the gateway extends that propagation across
// process boundaries. Every message travels in a length-prefixed frame
//
//   u24 body-length | u8 protocol version | u8 frame type | body
//
// (little endian; the length and version share one u32 word). Version 0 is
// what pre-versioning peers emit — their body lengths were capped far below
// 2^24, so the byte now carrying the version was always zero and old frames
// parse unchanged. A client opts into a newer protocol with a kHello
// exchange; until that succeeds both sides speak version-0 framing and only
// the v1 frame set, which is how a new server keeps serving old clients and
// a new client survives an old server.
//
// Bodies are encoded by common/codec (the same Encoder/Decoder the object
// store and WAL use). Decoding never trusts the peer: truncated, oversized,
// unknown-type, and trailing-garbage frames all surface as Status errors
// instead of crashes, because framed bytes come from the network.

#ifndef SENTINEL_NET_WIRE_H_
#define SENTINEL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"
#include "events/signature.h"

namespace sentinel {
namespace net {

/// Frame discriminator. Requests are < 64, responses >= 64.
enum class FrameType : uint8_t {
  // Requests (client -> server).
  kPing = 1,
  kRaiseEvent = 2,
  kCreateRule = 3,
  kEnableRule = 4,
  kDisableRule = 5,
  kSubscribe = 6,
  kFetchNotifications = 7,
  kGetStats = 8,
  kHello = 9,
  kHistoryScan = 10,
  kReplSubscribe = 11,

  // Responses (server -> client).
  kPong = 64,
  kStatusReply = 65,
  kNotificationBatch = 66,
  kStatsReply = 67,
  kHelloReply = 68,
  kBatchStatusReply = 69,
  kHistoryBatch = 70,
  kReplBatch = 71,
};

/// True when `raw` names a defined FrameType.
bool IsKnownFrameType(uint8_t raw);

/// Protocol versions a Hello exchange can settle on. Version 1 is the
/// pre-Hello protocol (exactly what version-0 framing carries); version 2
/// adds the header version byte and ranged kBatchStatusReply acks.
constexpr uint8_t kProtocolV1 = 1;
constexpr uint8_t kProtocolV2 = 2;
constexpr uint8_t kProtocolVersionMax = kProtocolV2;

/// Hard framing ceiling: the length field is 24 bits.
constexpr uint32_t kFrameBodyLimit = (1u << 24) - 1;

/// Default ceiling on a frame body. Anything larger is rejected before
/// buffering so a hostile peer cannot balloon server memory.
constexpr uint32_t kDefaultMaxFrameBody = 4u << 20;  // 4 MiB

/// Bytes of frame header preceding the body.
constexpr size_t kFrameHeaderSize = 5;  // u24 length + u8 version + u8 type

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint8_t version = 0;  ///< Header version byte (0 = legacy framing).
  std::string body;
};

/// Appends the framed encoding of (type, body) to `out`. `version` is the
/// header version byte; emit 0 unless the peer negotiated >= kProtocolV2.
void EncodeFrame(FrameType type, const std::string& body, std::string* out,
                 uint8_t version = 0);

/// Outcome of TryDecodeFrame.
enum class DecodeProgress {
  kNeedMore,  ///< Buffer holds a valid prefix; read more bytes.
  kFrame,     ///< One frame decoded; `*consumed` bytes were used.
  kError,     ///< Malformed stream; the connection should be dropped.
};

/// Attempts to split one frame off the front of `buf` (an accumulation
/// buffer of raw socket bytes). On kFrame, `*frame` holds the result and
/// `*consumed` the bytes to discard. On kError, `*error` says why (an
/// oversized length prefix or an unknown frame type).
DecodeProgress TryDecodeFrame(std::string_view buf, uint32_t max_body,
                              Frame* frame, size_t* consumed, Status* error);

// --- Request messages -----------------------------------------------------

/// Liveness probe; the server echoes `token` in a Pong.
struct PingMsg {
  uint64_t token = 0;

  void Encode(Encoder* enc) const;
  static Result<PingMsg> Decode(const std::string& body);
};

/// Raise a primitive event on the server: the remote analog of calling a
/// designated method on a reactive object. `oid` selects the server-side
/// relay object (0 lets the server pick one per class).
struct RaiseEventMsg {
  uint64_t oid = 0;
  std::string class_name;
  std::string method;
  EventModifier modifier = EventModifier::kEnd;
  ValueList params;

  void Encode(Encoder* enc) const;
  static Result<RaiseEventMsg> Decode(const std::string& body);
};

/// Decodes only the routing prefix (oid, class_name) of a kRaiseEvent
/// body. The IO thread uses this to pick the target shard queue without
/// paying for the full decode (params stay untouched); the owning worker
/// still runs the complete, validating Decode. False on truncated input.
bool PeekRaiseRouting(const std::string& body, uint64_t* oid,
                      std::string* class_name);

/// Create an ECA rule remotely. Conditions and actions are C++ closures and
/// cannot cross the wire, so they are referenced by FunctionRegistry name —
/// exactly how persisted rules rebind (an empty condition name means
/// "always true"; an empty action name defaults to the gateway's built-in
/// subscriber-notify action).
struct CreateRuleMsg {
  std::string name;
  std::string event_signature;  ///< e.g. "end Employee::ChangeIncome".
  std::string condition_name;
  std::string action_name;
  uint8_t coupling = 0;  ///< CouplingMode under the hood.
  int64_t priority = 0;
  bool enabled = true;

  void Encode(Encoder* enc) const;
  static Result<CreateRuleMsg> Decode(const std::string& body);
};

/// Enable/Disable an existing rule by name (frame type carries the verb).
struct RuleNameMsg {
  std::string name;

  void Encode(Encoder* enc) const;
  static Result<RuleNameMsg> Decode(const std::string& body);
};

/// Subscribe this session to a notification key: either an occurrence key
/// ("end Employee::ChangeIncome") or a rule-firing key ("rule:RuleName").
struct SubscribeMsg {
  std::string key;

  void Encode(Encoder* enc) const;
  static Result<SubscribeMsg> Decode(const std::string& body);
};

/// Fetch up to `max` queued notifications, waiting up to `wait_ms` for the
/// first one (0 = return immediately, possibly empty).
struct FetchMsg {
  uint32_t max = 64;
  uint32_t wait_ms = 0;

  void Encode(Encoder* enc) const;
  static Result<FetchMsg> Decode(const std::string& body);
};

/// Opens protocol negotiation (the first frame a version-aware client
/// sends, always with a version-0 header). The server picks the highest
/// version inside [min_version, max_version] it also supports and answers
/// with a HelloReply; a pre-Hello server answers with an error instead,
/// which the client treats as "speak v1". `tenant` names the admission
/// domain this connection bills its quotas to ("" = the default tenant).
struct HelloMsg {
  static constexpr uint32_t kMagic = 0x534E544Cu;  // "SNTL"

  uint32_t magic = kMagic;
  uint8_t min_version = kProtocolV1;
  uint8_t max_version = kProtocolVersionMax;
  std::string tenant;

  void Encode(Encoder* enc) const;
  static Result<HelloMsg> Decode(const std::string& body);
};

/// Request the server's stats snapshot. `sections` is a bitmask choosing
/// what the reply's JSON covers; unknown bits are rejected so they stay
/// available for future sections.
struct StatsRequestMsg {
  static constexpr uint32_t kDatabase = 1u << 0;  ///< Metrics registry.
  static constexpr uint32_t kGateway = 1u << 1;   ///< Server/queue counters.

  uint32_t sections = kDatabase | kGateway;

  void Encode(Encoder* enc) const;
  static Result<StatsRequestMsg> Decode(const std::string& body);
};

/// Replay spilled occurrence history: the remote face of
/// Database::HistoryScan. Filters mirror HistoryQuery; zero/defaulted
/// fields mean "unbounded" on that axis (`oid` 0 = every object). `limit`
/// is clamped server-side so one request cannot balloon a reply frame.
struct HistoryScanMsg {
  uint64_t min_seq = 0;
  uint64_t max_seq = ~0ull;
  int64_t min_micros = 0;  ///< 0 = open (occurrence micros are positive).
  int64_t max_micros = 0;  ///< 0 = open.
  uint64_t oid = 0;        ///< 0 = every object.
  uint32_t limit = 0;      ///< 0 = server default.
  /// Exclusive resume cursor: the (seq, shard) of the last row the previous
  /// HistoryBatch delivered (its next_seq/next_shard). (0, 0) scans from
  /// the start. Unlike bumping min_seq, the cursor cannot skip or duplicate
  /// rows when logical seqs collide across shards.
  uint64_t after_seq = 0;
  uint32_t after_shard = 0;

  void Encode(Encoder* enc) const;
  static Result<HistoryScanMsg> Decode(const std::string& body);
};

/// One poll of the log-shipping replication stream (request). A follower
/// drives the whole protocol with this single message in three modes:
/// probe (where is the primary's log?), snapshot (fuzzy heap chunks for
/// initial catch-up), and tail (WAL suffix + occurrence-mirror rows from
/// the cursors). Every request carries the follower's view of the primary
/// epoch; a request with a *newer* epoch demotes the serving node (epoch
/// fencing — a deposed primary stops accepting producers the moment it
/// hears of its successor).
struct ReplSubscribeMsg {
  enum Mode : uint8_t { kProbe = 0, kSnapshot = 1, kTail = 2 };

  uint64_t epoch = 0;
  uint8_t mode = kProbe;
  uint64_t after_oid = 0;       ///< Snapshot chunk cursor (exclusive).
  uint64_t next_lsn = 0;        ///< Tail: first WAL LSN not yet applied.
  uint64_t after_ordinal = 0;   ///< Tail: occurrence-mirror cursor (excl.).
  uint32_t max_items = 0;       ///< Per-section row cap; 0 = server default.

  void Encode(Encoder* enc) const;
  static Result<ReplSubscribeMsg> Decode(const std::string& body);
};

// --- Response messages ----------------------------------------------------

/// Generic request outcome. `payload` carries a small result where one
/// exists (RaiseEvent: the relay oid raises were applied to).
struct StatusReplyMsg {
  uint8_t code = 0;  ///< Status::Code cast to its underlying value.
  std::string message;
  uint64_t payload = 0;

  /// Rebuilds the Status this reply transports.
  Status ToStatus() const;
  static StatusReplyMsg FromStatus(const Status& s, uint64_t payload = 0);

  void Encode(Encoder* enc) const;
  static Result<StatusReplyMsg> Decode(const std::string& body);
};

/// Reply to Hello: the version both sides will speak from here on, plus
/// the server's frame-body ceiling so a well-behaved client never sends a
/// frame the server would have to kill the connection over.
struct HelloReplyMsg {
  uint8_t version = kProtocolV1;
  uint32_t max_frame_body = kDefaultMaxFrameBody;
  std::string server;  ///< Informational banner, e.g. "sentinel-gateway/2".

  void Encode(Encoder* enc) const;
  static Result<HelloReplyMsg> Decode(const std::string& body);
};

/// Ranged, coalesced acks (protocol >= v2 only). Answers a run of
/// consecutive same-session requests whose StatusReplies would have been
/// identical with one frame: `count` acks of (code, message). `payload`
/// carries the per-request payload only when count == 1 (a run of raises
/// against one relay shares its oid, so coalescing keeps that case exact
/// too — the encoder only merges acks whose payloads match).
struct BatchStatusReplyMsg {
  struct Run {
    uint32_t count = 0;
    uint8_t code = 0;
    std::string message;
    uint64_t payload = 0;
  };
  std::vector<Run> runs;

  /// Sum of run counts: how many request acks this frame settles.
  size_t TotalAcks() const;

  void Encode(Encoder* enc) const;
  static Result<BatchStatusReplyMsg> Decode(const std::string& body);
};

/// One delivered notification: the subscription key it matched plus the
/// occurrence fields of the paper's generated primitive event.
struct Notification {
  std::string key;
  uint64_t oid = 0;
  std::string class_name;
  std::string method;
  EventModifier modifier = EventModifier::kEnd;
  ValueList params;
  Timestamp timestamp;

  void Encode(Encoder* enc) const;
  static Status DecodeInto(Decoder* dec, Notification* out);
};

/// Reply to FetchNotifications.
struct NotificationBatchMsg {
  std::vector<Notification> items;

  void Encode(Encoder* enc) const;
  static Result<NotificationBatchMsg> Decode(const std::string& body);
};

/// Reply to HistoryScan: the matching occurrences in logical-clock order
/// (Notification encoding with an empty subscription key), plus `complete`
/// — false when the server's limit clamp cut the result short — and the
/// resume cursor (next_seq, next_shard): copy it into the next request's
/// after_seq/after_shard to continue exactly where this page ended.
struct HistoryBatchMsg {
  std::vector<Notification> items;
  bool complete = true;
  uint64_t next_seq = 0;
  uint32_t next_shard = 0;

  void Encode(Encoder* enc) const;
  static Result<HistoryBatchMsg> Decode(const std::string& body);
};

/// Reply to ReplSubscribe. Sections are filled per the request mode;
/// cursors always come back advanced so the follower's next request
/// resumes exactly where this batch ended.
struct ReplBatchMsg {
  /// One snapshot object image.
  struct ObjectImage {
    uint64_t oid = 0;
    std::string class_name;
    std::string state;
  };
  /// One shipped WAL record (mirror of txn/wal.h WalRecord).
  struct WalEntry {
    uint8_t type = 0;
    uint64_t txn = 0;
    uint64_t oid = 0;
    std::string payload;
  };

  uint64_t epoch = 0;      ///< Serving node's current epoch.
  uint8_t primary = 0;     ///< 1 while the serving node believes it leads.
  uint8_t mode = 0;        ///< Echo of the request mode.

  // Probe section (also stamped on every reply).
  uint64_t wal_base_lsn = 0;   ///< Oldest LSN still shippable.
  uint64_t wal_end_lsn = 0;    ///< LSN one past the newest record.
  uint64_t mirror_total = 0;   ///< Occurrence-mirror rows appended ever.

  // Snapshot section.
  std::vector<ObjectImage> objects;
  uint64_t next_oid = 0;       ///< Pass back as after_oid.
  uint8_t snapshot_done = 0;   ///< 1 = no objects past next_oid.
  /// WAL position captured when this chunk was cut: tailing from the
  /// *first* chunk's value replays everything the fuzzy snapshot raced.
  uint64_t snapshot_lsn = 0;

  // Tail section.
  std::vector<WalEntry> wal;
  uint64_t next_lsn = 0;       ///< Pass back as next_lsn.
  /// 1 = the requested LSN was checkpoint-truncated away; re-snapshot.
  uint8_t wal_reset = 0;
  /// Occurrence-mirror rows (HistorySegmentStore record bodies).
  std::vector<std::string> occ_records;
  uint64_t next_ordinal = 0;   ///< Pass back as after_ordinal.

  void Encode(Encoder* enc) const;
  static Result<ReplBatchMsg> Decode(const std::string& body);
};

/// Reply to Ping.
struct PongMsg {
  uint64_t token = 0;

  void Encode(Encoder* enc) const;
  static Result<PongMsg> Decode(const std::string& body);
};

/// Reply to GetStats: one JSON document, built on the mutator thread, with
/// a top-level object per requested section, e.g.
///   {"db": {"counters": ..., "gauges": ..., "histograms": ...},
///    "gateway": {"sessions": N, "ingress_depth": N, ...}}
/// JSON (not codec structs) so the schema can grow section-by-section
/// without a wire-format change, and so the payload is directly usable by
/// external tooling.
struct StatsReplyMsg {
  std::string json;

  void Encode(Encoder* enc) const;
  static Result<StatsReplyMsg> Decode(const std::string& body);
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_WIRE_H_
