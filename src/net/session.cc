// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/session.h"

#include <algorithm>

namespace sentinel {
namespace net {

void Session::QueueReply(FrameType type, const std::string& body) {
  std::lock_guard<std::mutex> lock(out_mu_);
  EncodeFrame(type, body, &outbox_);
}

std::string Session::TakeOutput() {
  std::lock_guard<std::mutex> lock(out_mu_);
  return std::move(outbox_);
}

bool Session::HasOutput() const {
  std::lock_guard<std::mutex> lock(out_mu_);
  return !outbox_.empty();
}

// --- NotificationHub ---------------------------------------------------------

void NotificationHub::Add(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[session->id()] = std::move(session);
}

std::shared_ptr<Session> NotificationHub::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

size_t NotificationHub::ReapSessionState(Session* session) {
  std::lock_guard<std::mutex> note(session->note_mu);
  // A fetch parked past this point would never be answered (the socket is
  // gone) yet would keep the expiry scan and deadline computation busy —
  // cancel it outright.
  session->fetch_parked = false;
  session->pending.clear();
  size_t subs = session->subscriptions.size();
  session->subscriptions.clear();
  return subs;
}

void NotificationHub::Remove(uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  size_t subs = ReapSessionState(session.get());
  if (subs > 0) sub_count_.fetch_sub(subs, std::memory_order_relaxed);
}

void NotificationHub::Clear() {
  std::map<uint64_t, std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  size_t subs = 0;
  for (auto& [id, session] : sessions) subs += ReapSessionState(session.get());
  if (subs > 0) sub_count_.fetch_sub(subs, std::memory_order_relaxed);
}

void NotificationHub::Subscribe(const std::shared_ptr<Session>& session,
                                const std::string& key) {
  std::lock_guard<std::mutex> note(session->note_mu);
  if (session->subscriptions.insert(key).second) {
    sub_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t NotificationHub::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> NotificationHub::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

void NotificationHub::SetWake(std::function<void()> wake) {
  std::lock_guard<std::mutex> lock(mu_);
  wake_ = std::move(wake);
}

void NotificationHub::WakeLocked() {
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    wake = wake_;
  }
  if (wake) wake();
}

void ReplyWithBatchLocked(Session* session, uint32_t max) {
  NotificationBatchMsg batch;
  size_t n = std::min<size_t>(max, session->pending.size());
  for (size_t i = 0; i < n; ++i) {
    batch.items.push_back(std::move(session->pending.front()));
    session->pending.pop_front();
  }
  session->Reply(FrameType::kNotificationBatch, batch);
}

void ReplyWithBatch(Session* session, uint32_t max) {
  std::lock_guard<std::mutex> note(session->note_mu);
  ReplyWithBatchLocked(session, max);
}

size_t NotificationHub::Broadcast(const std::string& key,
                                  const Notification& n, size_t max_pending) {
  // Fast miss: nobody anywhere is subscribed (the raw-throughput case).
  if (sub_count_.load(std::memory_order_relaxed) == 0) return 0;
  size_t reached = 0;
  uint64_t dropped = 0;
  bool replied = false;
  for (const std::shared_ptr<Session>& session : Snapshot()) {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (session->subscriptions.count(key) == 0) continue;
    ++reached;
    session->pending.push_back(n);
    while (session->pending.size() > std::max<size_t>(max_pending, 1)) {
      session->pending.pop_front();
      ++session->dropped_notifications;
      ++dropped;
    }
    metrics::Record(m_backlog_,
                    static_cast<int64_t>(session->pending.size()));
    if (session->fetch_parked) {
      session->fetch_parked = false;
      ReplyWithBatchLocked(session.get(), session->fetch_max);
      replied = true;
    }
  }
  if (reached > 0 || dropped > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    enqueued_total_ += reached;
    dropped_total_ += dropped;
  }
  metrics::Add(m_enqueued_, reached);
  metrics::Add(m_dropped_, dropped);
  if (replied) WakeLocked();
  return reached;
}

size_t NotificationHub::ExpireParkedFetches(
    std::chrono::steady_clock::time_point now) {
  size_t expired = 0;
  for (const std::shared_ptr<Session>& session : Snapshot()) {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (!session->fetch_parked || session->fetch_deadline > now) continue;
    session->fetch_parked = false;
    ReplyWithBatchLocked(session.get(), session->fetch_max);
    ++expired;
  }
  if (expired > 0) WakeLocked();
  return expired;
}

std::chrono::steady_clock::time_point NotificationHub::NextDeadline(
    std::chrono::steady_clock::time_point fallback) const {
  std::chrono::steady_clock::time_point next = fallback;
  for (const std::shared_ptr<Session>& session : Snapshot()) {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (session->fetch_parked && session->fetch_deadline < next) {
      next = session->fetch_deadline;
    }
  }
  return next;
}

uint64_t NotificationHub::notifications_enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_total_;
}

uint64_t NotificationHub::notifications_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

}  // namespace net
}  // namespace sentinel
