// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/session.h"

#include <algorithm>

namespace sentinel {
namespace net {

namespace {

/// Outbox chunk target: QueueReply appends into the tail chunk until it
/// reaches this size, then starts a new one. Big enough that a burst of
/// small acks coalesces into one iovec; small enough that a writev never
/// stages more than a few syscalls' worth per chunk.
constexpr size_t kOutChunkTarget = 64 * 1024;

/// Deterministic size estimate for the per-session notify-bytes quota.
/// Deliberately cheap (no encode pass): fixed frame overhead plus the
/// variable-length fields. Add and subtract use the same function, so the
/// running total never drifts.
size_t ApproxNotificationBytes(const Notification& n) {
  return 48 + n.key.size() + n.class_name.size() + n.method.size() +
         16 * n.params.size();
}

}  // namespace

void Session::QueueReply(FrameType type, const std::string& body) {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    was_empty = outbox_.empty();
    if (outbox_.empty() || outbox_.back().size() >= kOutChunkTarget) {
      outbox_.emplace_back();
      outbox_.back().reserve(
          std::min(kOutChunkTarget, kFrameHeaderSize + body.size()));
    }
    EncodeFrame(type, body, &outbox_.back(), wire_version());
  }
  if (was_empty && flush_notifier_) flush_notifier_(this);
}

void Session::QueueReplyQuiet(FrameType type, const std::string& body) {
  std::lock_guard<std::mutex> lock(out_mu_);
  if (outbox_.empty() || outbox_.back().size() >= kOutChunkTarget) {
    outbox_.emplace_back();
    outbox_.back().reserve(
        std::min(kOutChunkTarget, kFrameHeaderSize + body.size()));
  }
  EncodeFrame(type, body, &outbox_.back(), wire_version());
}

void Session::TakeOutput(std::deque<std::string>* wq) {
  std::lock_guard<std::mutex> lock(out_mu_);
  while (!outbox_.empty()) {
    wq->push_back(std::move(outbox_.front()));
    outbox_.pop_front();
  }
}

bool Session::HasOutput() const {
  std::lock_guard<std::mutex> lock(out_mu_);
  return !outbox_.empty();
}

// --- NotificationHub ---------------------------------------------------------

void NotificationHub::Add(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[session->id()] = std::move(session);
}

std::shared_ptr<Session> NotificationHub::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::string> NotificationHub::ReapSessionState(Session* session) {
  std::lock_guard<std::mutex> note(session->note_mu);
  // A fetch parked past this point would never be answered (the socket is
  // gone) yet would keep a live deadline entry busy — cancel it outright;
  // the deadline map entry goes stale and expiry skips it.
  session->fetch_parked = false;
  session->pending.clear();
  session->pending_bytes = 0;
  std::vector<std::string> keys(session->subscriptions.begin(),
                                session->subscriptions.end());
  session->subscriptions.clear();
  return keys;
}

void NotificationHub::Remove(uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  std::vector<std::string> keys = ReapSessionState(session.get());
  if (!keys.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (const std::string& key : keys) {
      auto it = subs_by_key_.find(key);
      if (it == subs_by_key_.end()) continue;
      removed += it->second.erase(id);
      if (it->second.empty()) subs_by_key_.erase(it);
    }
    // Decrement by what the index actually held, not keys.size(): a racing
    // Subscribe may have added to the session's subscription set without
    // reaching the index yet (it will see the session deregistered and
    // roll its insert back), so the reaped key list can overcount. The
    // invariant is sub_count_ == total index entries, both under mu_.
    sub_count_.fetch_sub(removed, std::memory_order_relaxed);
  }
}

void NotificationHub::Clear() {
  std::map<uint64_t, std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
    subs_by_key_.clear();
    parked_.clear();
    sub_count_.store(0, std::memory_order_relaxed);
  }
  for (auto& [id, session] : sessions) ReapSessionState(session.get());
}

void NotificationHub::Subscribe(const std::shared_ptr<Session>& session,
                                const std::string& key) {
  bool inserted;
  {
    std::lock_guard<std::mutex> note(session->note_mu);
    inserted = session->subscriptions.insert(key).second;
  }
  if (!inserted) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(session->id()) != 0) {
      if (subs_by_key_[key].insert(session->id()).second) {
        sub_count_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
  // The session was reaped between the two locks. Its Remove() may have
  // run before our insert and so never saw this key; updating the index
  // now would leak an entry (and permanently a sub_count_) that no
  // Remove() will ever clean up. Undo the insert instead.
  std::lock_guard<std::mutex> note(session->note_mu);
  session->subscriptions.erase(key);
}

void NotificationHub::ParkFetch(
    const std::shared_ptr<Session>& session, uint32_t max,
    std::chrono::steady_clock::time_point deadline) {
  {
    std::lock_guard<std::mutex> note(session->note_mu);
    session->fetch_parked = true;
    session->fetch_max = max;
    session->fetch_deadline = deadline;
  }
  std::lock_guard<std::mutex> lock(mu_);
  parked_.emplace(deadline, session->id());
}

size_t NotificationHub::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> NotificationHub::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

void ReplyWithBatchLocked(Session* session, uint32_t max) {
  NotificationBatchMsg batch;
  size_t n = std::min<size_t>(max, session->pending.size());
  for (size_t i = 0; i < n; ++i) {
    Notification& front = session->pending.front();
    size_t bytes = ApproxNotificationBytes(front);
    session->pending_bytes -= std::min(session->pending_bytes, bytes);
    batch.items.push_back(std::move(front));
    session->pending.pop_front();
  }
  session->Reply(FrameType::kNotificationBatch, batch);
}

void ReplyWithBatch(Session* session, uint32_t max) {
  std::lock_guard<std::mutex> note(session->note_mu);
  ReplyWithBatchLocked(session, max);
}

size_t NotificationHub::Broadcast(const std::string& key,
                                  const Notification& n,
                                  const NotifyLimits& limits) {
  // Fast miss: nobody anywhere is subscribed (the raw-throughput case).
  if (sub_count_.load(std::memory_order_relaxed) == 0) return 0;

  // Indexed fan-out: resolve only this key's subscribers, not every
  // session. The shared_ptrs pin the sessions while their note_mu work
  // proceeds outside the registry lock.
  std::vector<std::shared_ptr<Session>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subs_by_key_.find(key);
    if (it == subs_by_key_.end()) return 0;
    targets.reserve(it->second.size());
    for (uint64_t id : it->second) {
      auto sit = sessions_.find(id);
      if (sit != sessions_.end()) targets.push_back(sit->second);
    }
  }

  size_t reached = 0;
  uint64_t dropped = 0;
  const size_t n_bytes = ApproxNotificationBytes(n);
  const size_t max_count = std::max<size_t>(limits.max_count, 1);
  for (const std::shared_ptr<Session>& session : targets) {
    std::lock_guard<std::mutex> note(session->note_mu);
    // The index can briefly lag a reap; the cleared subscription set is
    // authoritative.
    if (session->subscriptions.count(key) == 0) continue;
    ++reached;
    session->pending.push_back(n);
    session->pending_bytes += n_bytes;
    while (session->pending.size() > max_count ||
           (limits.max_bytes > 0 && session->pending_bytes > limits.max_bytes &&
            session->pending.size() > 1)) {
      size_t bytes = ApproxNotificationBytes(session->pending.front());
      session->pending_bytes -= std::min(session->pending_bytes, bytes);
      session->pending.pop_front();
      ++session->dropped_notifications;
      ++dropped;
    }
    metrics::Record(m_backlog_,
                    static_cast<int64_t>(session->pending.size()));
    if (session->fetch_parked) {
      session->fetch_parked = false;
      ReplyWithBatchLocked(session.get(), session->fetch_max);
    }
  }
  if (reached > 0 || dropped > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    enqueued_total_ += reached;
    dropped_total_ += dropped;
  }
  metrics::Add(m_enqueued_, reached);
  metrics::Add(m_dropped_, dropped);
  return reached;
}

size_t NotificationHub::ExpireParkedFetches(
    std::chrono::steady_clock::time_point now) {
  // Pop only due deadline entries; each may be stale (completed early,
  // re-parked, or reaped), in which case the session-side check skips it.
  std::vector<std::shared_ptr<Session>> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!parked_.empty() && parked_.begin()->first <= now) {
      auto it = sessions_.find(parked_.begin()->second);
      if (it != sessions_.end()) due.push_back(it->second);
      parked_.erase(parked_.begin());
    }
  }
  size_t expired = 0;
  for (const std::shared_ptr<Session>& session : due) {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (!session->fetch_parked || session->fetch_deadline > now) continue;
    session->fetch_parked = false;
    ReplyWithBatchLocked(session.get(), session->fetch_max);
    ++expired;
  }
  return expired;
}

std::chrono::steady_clock::time_point NotificationHub::NextDeadline(
    std::chrono::steady_clock::time_point fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (parked_.empty()) return fallback;
  return std::min(parked_.begin()->first, fallback);
}

uint64_t NotificationHub::notifications_enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_total_;
}

uint64_t NotificationHub::notifications_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

}  // namespace net
}  // namespace sentinel
