// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/ingress_queue.h"

#include <algorithm>

namespace sentinel {
namespace net {

IngressQueue::IngressQueue(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

Status IngressQueue::TryPush(IngressItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("ingress queue is shut down");
    }
    if (items_.size() >= capacity_) {
      ++rejected_total_;
      metrics::Add(m_rejected_);
      return Status::ResourceExhausted("ingress queue full (" +
                                       std::to_string(capacity_) + ")");
    }
    items_.push_back(std::move(item));
    ++pushed_total_;
    metrics::Set(m_depth_, static_cast<int64_t>(items_.size()));
  }
  not_empty_.notify_one();
  return Status::OK();
}

size_t IngressQueue::TryPushBatch(std::vector<IngressItem>* items) {
  if (items->empty()) return 0;
  size_t accepted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      while (accepted < items->size() && items_.size() < capacity_) {
        items_.push_back(std::move((*items)[accepted]));
        ++accepted;
      }
      pushed_total_ += accepted;
    }
    size_t rejected = items->size() - accepted;
    if (rejected > 0) {
      rejected_total_ += rejected;
      metrics::Add(m_rejected_, rejected);
    }
    if (accepted > 0) {
      metrics::Set(m_depth_, static_cast<int64_t>(items_.size()));
    }
  }
  if (accepted > 0) {
    items->erase(items->begin(), items->begin() + accepted);
    not_empty_.notify_one();
  }
  return accepted;
}

size_t IngressQueue::PopBatch(size_t max_batch, std::chrono::milliseconds wait,
                              std::vector<IngressItem>* out) {
  if (max_batch == 0) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait_for(lock, wait,
                      [this] { return !items_.empty() || shutdown_; });
  size_t n = std::min(max_batch, items_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  if (n > 0) metrics::Set(m_depth_, static_cast<int64_t>(items_.size()));
  return n;
}

bool IngressQueue::WaitReady(std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  return not_empty_.wait_for(lock, wait,
                             [this] { return !items_.empty() || shutdown_; });
}

void IngressQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
}

bool IngressQueue::DrainedAfterShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_ && items_.empty();
}

bool IngressQueue::shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

size_t IngressQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

uint64_t IngressQueue::pushed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_total_;
}

uint64_t IngressQueue::rejected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_total_;
}

}  // namespace net
}  // namespace sentinel
