// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// IngressQueue: the bounded multi-producer / single-consumer funnel between
// the gateway's socket side and the Database facade.
//
// The paper's system (and this reproduction's core) assumes a single mutator
// thread; the gateway keeps that model intact by letting N socket threads
// enqueue decoded request frames here while exactly one mutator thread
// drains them in batches. Capacity is bounded: when the mutator falls
// behind, TryPush fails with ResourceExhausted and the caller answers the
// client with backpressure instead of growing memory without limit.
//
// Ordering guarantee: global FIFO, which implies FIFO per producer — a
// producer's second request is never applied before its first.

#ifndef SENTINEL_NET_INGRESS_QUEUE_H_
#define SENTINEL_NET_INGRESS_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/wire.h"

namespace sentinel {
namespace net {

class Session;
struct TenantState;

/// One queued request: the originating session (pinned by shared_ptr so a
/// worker never races a reap — it checks session->closed instead), the
/// decoded frame, and, for admitted raises, the tenant whose in-flight
/// counter was charged at admission. The worker credits that exact tenant
/// back when it acks, so quota accounting balances even when the session's
/// tenant changes (Hello) while frames are queued.
struct IngressItem {
  std::shared_ptr<Session> session;
  TenantState* charged_tenant = nullptr;  ///< Non-null only for raises.
  Frame frame;
};

/// Bounded MPSC queue of gateway requests. All methods are thread safe.
class IngressQueue {
 public:
  explicit IngressQueue(size_t capacity);

  IngressQueue(const IngressQueue&) = delete;
  IngressQueue& operator=(const IngressQueue&) = delete;

  /// Enqueues without blocking. ResourceExhausted when the queue is at
  /// capacity (the backpressure signal), FailedPrecondition after Shutdown.
  Status TryPush(IngressItem item);

  /// Pushes as many of `*items` as capacity allows under one lock
  /// acquisition, consuming accepted items from the front (order
  /// preserved). Returns the number accepted; whatever remains in `*items`
  /// was rejected (backpressure, or shutdown) and is counted as such. The
  /// IO thread uses this to amortize the queue mutex across a read burst.
  size_t TryPushBatch(std::vector<IngressItem>* items);

  /// Pops up to `max_batch` items into `*out` (appended), blocking up to
  /// `wait` for the first one. Returns the number popped; 0 means the wait
  /// timed out or the queue is shut down *and* fully drained. Items already
  /// in flight at Shutdown are still delivered, so the consumer can finish
  /// cleanly: loop until Shutdown has been called and PopBatch returns 0.
  size_t PopBatch(size_t max_batch, std::chrono::milliseconds wait,
                  std::vector<IngressItem>* out);

  /// Blocks up to `wait` until the queue is nonempty or shut down, without
  /// popping anything; returns true in either of those cases. Lets the
  /// single consumer wait for work *before* taking locks that the
  /// pop-and-process step must run under (there is no other consumer to
  /// steal the items between the wait and the pop).
  bool WaitReady(std::chrono::milliseconds wait);

  /// Stops accepting pushes and wakes blocked consumers. Idempotent.
  void Shutdown();

  /// True once Shutdown() has been called *and* every admitted item has
  /// been popped — the consumer's exit predicate. Evaluating both under
  /// one lock is the point: deciding from a stale PopBatch count plus a
  /// separate shutdown() read lets a frame admitted between the two
  /// observations be stranded forever (admitted, never processed, never
  /// acked). Safe because TryPush rejects under the same mutex once
  /// shutdown_ is set: a true result can never be invalidated by a later
  /// push.
  bool DrainedAfterShutdown() const;

  bool shutdown() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Total items accepted / rejected for backpressure since construction.
  uint64_t pushed_total() const;
  uint64_t rejected_total() const;

  /// Mirrors the live depth into the net.ingress.depth gauge (updated on
  /// every push/pop) and rejections into net.ingress.rejected. `suffix`
  /// distinguishes per-shard queues (e.g. ".s1") so concurrent queues do
  /// not fight over one depth gauge; shard 0 keeps the unsuffixed names.
  void SetMetrics(MetricsRegistry* registry, const std::string& suffix = "") {
    std::lock_guard<std::mutex> lock(mu_);
    m_depth_ = registry->gauge("net.ingress.depth" + suffix);
    m_rejected_ = registry->counter("net.ingress.rejected" + suffix);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<IngressItem> items_;
  bool shutdown_ = false;
  uint64_t pushed_total_ = 0;
  uint64_t rejected_total_ = 0;
  Gauge* m_depth_ = nullptr;
  Counter* m_rejected_ = nullptr;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_INGRESS_QUEUE_H_
