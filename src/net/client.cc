// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sentinel {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

Result<std::unique_ptr<GatewayClient>> GatewayClient::Connect(
    const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Status::IOError("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return err;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<GatewayClient>(new GatewayClient(fd));
}

GatewayClient::~GatewayClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status GatewayClient::SendFrame(FrameType type, const std::string& body) {
  std::string wire;
  EncodeFrame(type, body, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status GatewayClient::ReadFrame(Frame* frame) {
  while (true) {
    size_t consumed = 0;
    Status error;
    DecodeProgress progress = TryDecodeFrame(inbuf_, kDefaultMaxFrameBody,
                                             frame, &consumed, &error);
    if (progress == DecodeProgress::kFrame) {
      inbuf_.erase(0, consumed);
      return Status::OK();
    }
    if (progress == DecodeProgress::kError) return error;

    char chunk[kReadChunk];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Status GatewayClient::Call(FrameType type, const std::string& body,
                           Frame* reply) {
  SENTINEL_RETURN_IF_ERROR(SendFrame(type, body));
  return ReadFrame(reply);
}

Status GatewayClient::ExpectStatusReply(const Frame& reply,
                                        uint64_t* payload) {
  if (reply.type != FrameType::kStatusReply) {
    return Status::Internal("expected StatusReply, got frame type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  SENTINEL_ASSIGN_OR_RETURN(StatusReplyMsg msg,
                            StatusReplyMsg::Decode(reply.body));
  if (payload != nullptr) *payload = msg.payload;
  return msg.ToStatus();
}

void GatewayClient::Backoff(uint32_t* backoff_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(*backoff_ms));
  *backoff_ms = std::min(*backoff_ms * 2, retry_policy_.max_backoff_ms);
}

Status GatewayClient::Ping() {
  PingMsg msg;
  msg.token = 0x53454e54;  // Arbitrary; verified in the echo.
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kPing, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    return ExpectStatusReply(reply, nullptr);  // Server-side decode error.
  }
  if (reply.type != FrameType::kPong) {
    return Status::Internal("expected Pong");
  }
  SENTINEL_ASSIGN_OR_RETURN(PongMsg pong, PongMsg::Decode(reply.body));
  if (pong.token != msg.token) return Status::Internal("pong token mismatch");
  return Status::OK();
}

Result<uint64_t> GatewayClient::RaiseEvent(const std::string& class_name,
                                           const std::string& method,
                                           EventModifier modifier,
                                           const ValueList& params,
                                           uint64_t oid) {
  RaiseEventMsg msg;
  msg.oid = oid;
  msg.class_name = class_name;
  msg.method = method;
  msg.modifier = modifier;
  msg.params = params;
  Encoder enc;
  msg.Encode(&enc);
  uint32_t backoff = retry_policy_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    Frame reply;
    SENTINEL_RETURN_IF_ERROR(
        Call(FrameType::kRaiseEvent, enc.buffer(), &reply));
    uint64_t payload = 0;
    Status s = ExpectStatusReply(reply, &payload);
    if (s.ok()) return payload;
    if (!IsTransient(s) || attempt >= retry_policy_.max_attempts) return s;
    ++retries_total_;
    Backoff(&backoff);
  }
}

Status GatewayClient::RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                                     uint64_t* rejected) {
  if (rejected != nullptr) *rejected = 0;
  std::vector<const RaiseEventMsg*> pending;
  pending.reserve(msgs.size());
  for (const RaiseEventMsg& msg : msgs) pending.push_back(&msg);

  Status first_error = Status::OK();
  Status first_transient = Status::OK();
  uint32_t backoff = retry_policy_.initial_backoff_ms;
  for (int attempt = 1; !pending.empty(); ++attempt) {
    // One big write keeps the ingress queue fed; replies are drained
    // after. Replies come back in request order, so reply i belongs to
    // pending[i] — which is what lets a retry re-send exactly the
    // rejected subset.
    std::string wire;
    for (const RaiseEventMsg* msg : pending) {
      Encoder enc;
      msg->Encode(&enc);
      EncodeFrame(FrameType::kRaiseEvent, enc.buffer(), &wire);
    }
    size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(std::strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }

    std::vector<const RaiseEventMsg*> retry;
    first_transient = Status::OK();
    for (const RaiseEventMsg* msg : pending) {
      Frame reply;
      SENTINEL_RETURN_IF_ERROR(ReadFrame(&reply));
      Status s = ExpectStatusReply(reply, nullptr);
      if (s.ok()) continue;
      if (IsTransient(s)) {
        retry.push_back(msg);
        if (first_transient.ok()) first_transient = s;
      } else if (first_error.ok()) {
        first_error = s;
      }
    }
    if (retry.empty() || attempt >= retry_policy_.max_attempts) {
      pending = std::move(retry);
      break;
    }
    retries_total_ += retry.size();
    pending = std::move(retry);
    Backoff(&backoff);
  }

  if (rejected != nullptr) *rejected = pending.size();
  if (!first_error.ok()) return first_error;
  if (!pending.empty()) return first_transient;
  return Status::OK();
}

Status GatewayClient::CreateRule(const CreateRuleMsg& spec) {
  Encoder enc;
  spec.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      Call(FrameType::kCreateRule, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Status GatewayClient::EnableRule(const std::string& name) {
  RuleNameMsg msg;
  msg.name = name;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      Call(FrameType::kEnableRule, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Status GatewayClient::DisableRule(const std::string& name) {
  RuleNameMsg msg;
  msg.name = name;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      Call(FrameType::kDisableRule, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Status GatewayClient::Subscribe(const std::string& key) {
  SubscribeMsg msg;
  msg.key = key;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kSubscribe, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Result<std::vector<Notification>> GatewayClient::Fetch(uint32_t max,
                                                       uint32_t wait_ms) {
  FetchMsg msg;
  msg.max = max;
  msg.wait_ms = wait_ms;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      Call(FrameType::kFetchNotifications, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    Status s = ExpectStatusReply(reply, nullptr);
    if (s.ok()) s = Status::Internal("expected a notification batch");
    return s;
  }
  if (reply.type != FrameType::kNotificationBatch) {
    return Status::Internal("expected NotificationBatch");
  }
  SENTINEL_ASSIGN_OR_RETURN(NotificationBatchMsg batch,
                            NotificationBatchMsg::Decode(reply.body));
  return std::move(batch.items);
}

Result<std::string> GatewayClient::GetStats(uint32_t sections) {
  StatsRequestMsg msg;
  msg.sections = sections;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kGetStats, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    Status s = ExpectStatusReply(reply, nullptr);
    if (s.ok()) s = Status::Internal("expected a stats reply");
    return s;
  }
  if (reply.type != FrameType::kStatsReply) {
    return Status::Internal("expected StatsReply");
  }
  SENTINEL_ASSIGN_OR_RETURN(StatsReplyMsg stats,
                            StatsReplyMsg::Decode(reply.body));
  return std::move(stats.json);
}

}  // namespace net
}  // namespace sentinel
