// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "shmtp/handle.h"

namespace sentinel {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

// --- Connection --------------------------------------------------------------

Result<int> Connection::DialSocket(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Status::IOError("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return err;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<Connection>> Connection::Dial(const std::string& host,
                                                     uint16_t port,
                                                     ClientOptions options) {
  SENTINEL_ASSIGN_OR_RETURN(int fd, DialSocket(host, port));
  std::unique_ptr<Connection> conn(new Connection(fd));
  if (!options.negotiate) return conn;

  bool negotiated = false;
  Status s = conn->Negotiate(options, &negotiated);
  if (s.ok() && negotiated) return conn;
  if (s.ok()) {
    // Pre-Hello server: it answered the Hello with an error StatusReply.
    // The connection survives, but its framing state is suspect (some
    // servers drop after a protocol error) — redial plain and speak v1.
    // This is the new-client / old-server path.
    conn.reset();
    SENTINEL_ASSIGN_OR_RETURN(fd, DialSocket(host, port));
    return std::unique_ptr<Connection>(new Connection(fd));
  }
  if (s.IsIOError()) {
    // Hard close on Hello: same story, older server.
    conn.reset();
    SENTINEL_ASSIGN_OR_RETURN(fd, DialSocket(host, port));
    return std::unique_ptr<Connection>(new Connection(fd));
  }
  return s;  // Real negotiation failure (e.g. incompatible version range).
}

Status Connection::Negotiate(const ClientOptions& options, bool* negotiated) {
  *negotiated = false;
  HelloMsg hello;
  hello.min_version = options.min_version;
  hello.max_version = options.max_version;
  hello.tenant = options.tenant;
  Encoder enc;
  hello.Encode(&enc);
  Frame reply;
  // The Hello itself always travels with a version-0 header: the server's
  // version is unknown until it answers.
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kHello, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    SENTINEL_ASSIGN_OR_RETURN(StatusReplyMsg msg,
                              StatusReplyMsg::Decode(reply.body));
    Status s = msg.ToStatus();
    if (s.IsInvalidArgument() && options.min_version > kProtocolV1) {
      // The server understood the Hello and rejected the range — that is a
      // genuine incompatibility, not an old server.
      return s;
    }
    return Status::OK();  // Old server; *negotiated stays false.
  }
  if (reply.type != FrameType::kHelloReply) {
    return Status::Internal("expected HelloReply");
  }
  SENTINEL_ASSIGN_OR_RETURN(HelloReplyMsg msg,
                            HelloReplyMsg::Decode(reply.body));
  if (msg.version < options.min_version ||
      msg.version > options.max_version) {
    return Status::Internal("server negotiated version " +
                            std::to_string(msg.version) +
                            " outside the offered range");
  }
  version_ = msg.version;
  server_max_frame_body_ = msg.max_frame_body;
  server_ = msg.server;
  *negotiated = true;
  return Status::OK();
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Status Connection::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Connection::SendFrame(FrameType type, const std::string& body) {
  std::string wire;
  EncodeFrame(type, body, &wire, wire_version());
  return SendRaw(wire);
}

Status Connection::ReadFrame(Frame* frame) {
  while (true) {
    size_t consumed = 0;
    Status error;
    DecodeProgress progress = TryDecodeFrame(inbuf_, kDefaultMaxFrameBody,
                                             frame, &consumed, &error);
    if (progress == DecodeProgress::kFrame) {
      inbuf_.erase(0, consumed);
      return Status::OK();
    }
    if (progress == DecodeProgress::kError) return error;

    char chunk[kReadChunk];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Status Connection::Call(FrameType type, const std::string& body,
                        Frame* reply) {
  SENTINEL_RETURN_IF_ERROR(SendFrame(type, body));
  return ReadFrame(reply);
}

Status Connection::ExpectStatusReply(const Frame& reply, uint64_t* payload) {
  if (reply.type != FrameType::kStatusReply) {
    return Status::Internal("expected StatusReply, got frame type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  SENTINEL_ASSIGN_OR_RETURN(StatusReplyMsg msg,
                            StatusReplyMsg::Decode(reply.body));
  if (payload != nullptr) *payload = msg.payload;
  return msg.ToStatus();
}

Status Connection::Ping() {
  PingMsg msg;
  msg.token = 0x53454e54;  // Arbitrary; verified in the echo.
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kPing, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    return ExpectStatusReply(reply, nullptr);  // Server-side decode error.
  }
  if (reply.type != FrameType::kPong) {
    return Status::Internal("expected Pong");
  }
  SENTINEL_ASSIGN_OR_RETURN(PongMsg pong, PongMsg::Decode(reply.body));
  if (pong.token != msg.token) return Status::Internal("pong token mismatch");
  return Status::OK();
}

Status Connection::CreateRule(const CreateRuleMsg& spec) {
  Encoder enc;
  spec.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      Call(FrameType::kCreateRule, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Status Connection::RuleToggle(FrameType type, const std::string& name) {
  RuleNameMsg msg;
  msg.name = name;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(type, enc.buffer(), &reply));
  return ExpectStatusReply(reply, nullptr);
}

Status Connection::EnableRule(const std::string& name) {
  return RuleToggle(FrameType::kEnableRule, name);
}

Status Connection::DisableRule(const std::string& name) {
  return RuleToggle(FrameType::kDisableRule, name);
}

Result<std::string> Connection::GetStats(uint32_t sections) {
  StatsRequestMsg msg;
  msg.sections = sections;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(Call(FrameType::kGetStats, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    Status s = ExpectStatusReply(reply, nullptr);
    if (s.ok()) s = Status::Internal("expected a stats reply");
    return s;
  }
  if (reply.type != FrameType::kStatsReply) {
    return Status::Internal("expected StatsReply");
  }
  SENTINEL_ASSIGN_OR_RETURN(StatsReplyMsg stats,
                            StatsReplyMsg::Decode(reply.body));
  return std::move(stats.json);
}

// --- Publisher ---------------------------------------------------------------

Publisher::Publisher(Connection* connection, size_t window)
    : conn_(connection), window_(window == 0 ? 1 : window) {}

void Publisher::Backoff(uint32_t* backoff_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(*backoff_ms));
  *backoff_ms = std::min(*backoff_ms * 2, retry_policy_.max_backoff_ms);
}

Status Publisher::ReadAcks(std::vector<Ack>* out) {
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(conn_->ReadFrame(&reply));
  if (reply.type == FrameType::kStatusReply) {
    SENTINEL_ASSIGN_OR_RETURN(StatusReplyMsg msg,
                              StatusReplyMsg::Decode(reply.body));
    out->push_back(Ack{msg.ToStatus(), msg.payload});
    return Status::OK();
  }
  if (reply.type == FrameType::kBatchStatusReply) {
    SENTINEL_ASSIGN_OR_RETURN(BatchStatusReplyMsg batch,
                              BatchStatusReplyMsg::Decode(reply.body));
    for (const BatchStatusReplyMsg::Run& run : batch.runs) {
      StatusReplyMsg one;
      one.code = run.code;
      one.message = run.message;
      one.payload = run.payload;
      Status s = one.ToStatus();
      for (uint32_t i = 0; i < run.count; ++i) {
        out->push_back(Ack{s, run.payload});
      }
    }
    return Status::OK();
  }
  return Status::Internal("expected an ack frame, got type " +
                          std::to_string(static_cast<int>(reply.type)));
}

Status Publisher::SendWindowed(
    const std::vector<const RaiseEventMsg*>& pending,
    std::vector<Ack>* acks) {
  acks->clear();
  acks->reserve(pending.size());
  size_t sent = 0;
  size_t scanned = 0;  ///< Acks already inspected by the stall check.
  bool stalled = false;
  std::string wire;
  while (acks->size() < pending.size()) {
    // A stalled window only drains: once every in-flight frame is acked,
    // the pass ends and the unsent tail is reported below.
    if (stalled && acks->size() == sent) break;
    // Top the window up with one coalesced send — unless a transient
    // rejection stalled it: pumping more frames at a server that just
    // answered ResourceExhausted/Busy can only deepen the rejection run,
    // so the pass stops advancing at the first failed seq instead.
    if (!stalled && sent < pending.size() &&
        sent - acks->size() < window_) {
      wire.clear();
      size_t burst_end = std::min(pending.size(), acks->size() + window_);
      for (; sent < burst_end; ++sent) {
        Encoder enc;
        pending[sent]->Encode(&enc);
        conn_->EncodeFrameTo(FrameType::kRaiseEvent, enc.buffer(), &wire);
      }
      SENTINEL_RETURN_IF_ERROR(conn_->SendRaw(wire));
    }
    SENTINEL_RETURN_IF_ERROR(ReadAcks(acks));
    if (acks->size() > sent) {
      return Status::Internal("server acked more raises than were sent");
    }
    while (scanned < acks->size() && !stalled) {
      if (IsTransient((*acks)[scanned].status)) {
        stalled = true;
        // Latched, not overwritten: on a retry pass the indices are
        // relative to the retry subset, while callers want the seq within
        // the original request — which the first (full) pass recorded.
        if (first_rejected_seq_ == kNoRejectedSeq) {
          first_rejected_seq_ = scanned;
        }
        break;
      }
      ++scanned;
    }
  }
  if (stalled && acks->size() < pending.size()) {
    // The never-sent tail: each withheld raise is reported as its own
    // transient rejection, so the retry loop re-sends exactly this subset
    // and `*rejected` accounting stays 1:1 with the request.
    Status withheld = Status::ResourceExhausted(
        "raise withheld: window stalled by a rejection at seq " +
        std::to_string(scanned));
    while (acks->size() < pending.size()) {
      acks->push_back(Ack{withheld, 0});
    }
  }
  return Status::OK();
}

Result<uint64_t> Publisher::Raise(const std::string& class_name,
                                  const std::string& method,
                                  EventModifier modifier,
                                  const ValueList& params, uint64_t oid) {
  RaiseEventMsg msg;
  msg.oid = oid;
  msg.class_name = class_name;
  msg.method = method;
  msg.modifier = modifier;
  msg.params = params;
  Encoder enc;
  msg.Encode(&enc);
  uint32_t backoff = retry_policy_.initial_backoff_ms;
  std::vector<Ack> acks;
  for (int attempt = 1;; ++attempt) {
    SENTINEL_RETURN_IF_ERROR(
        conn_->SendFrame(FrameType::kRaiseEvent, enc.buffer()));
    acks.clear();
    while (acks.empty()) {
      SENTINEL_RETURN_IF_ERROR(ReadAcks(&acks));
    }
    if (acks.size() != 1) {
      return Status::Internal("expected one ack for a single raise");
    }
    if (acks[0].status.ok()) return acks[0].payload;
    if (!IsTransient(acks[0].status) ||
        attempt >= retry_policy_.max_attempts) {
      return acks[0].status;
    }
    ++retries_total_;
    Backoff(&backoff);
  }
}

Status Publisher::RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                                 uint64_t* rejected) {
  if (rejected != nullptr) *rejected = 0;
  first_rejected_seq_ = kNoRejectedSeq;
  std::vector<const RaiseEventMsg*> pending;
  pending.reserve(msgs.size());
  for (const RaiseEventMsg& msg : msgs) pending.push_back(&msg);

  Status first_error = Status::OK();
  Status first_transient = Status::OK();
  uint32_t backoff = retry_policy_.initial_backoff_ms;
  std::vector<Ack> acks;
  for (int attempt = 1; !pending.empty(); ++attempt) {
    // Windowed pass: acks map 1:1 onto `pending` in request order — which
    // is what lets a retry re-send exactly the rejected subset.
    SENTINEL_RETURN_IF_ERROR(SendWindowed(pending, &acks));

    std::vector<const RaiseEventMsg*> retry;
    first_transient = Status::OK();
    for (size_t i = 0; i < pending.size(); ++i) {
      const Status& s = acks[i].status;
      if (s.ok()) continue;
      if (IsTransient(s)) {
        retry.push_back(pending[i]);
        if (first_transient.ok()) first_transient = s;
      } else if (first_error.ok()) {
        first_error = s;
      }
    }
    if (retry.empty() || attempt >= retry_policy_.max_attempts) {
      pending = std::move(retry);
      break;
    }
    retries_total_ += retry.size();
    pending = std::move(retry);
    Backoff(&backoff);
  }

  if (rejected != nullptr) *rejected = pending.size();
  if (!first_error.ok()) return first_error;
  if (!pending.empty()) return first_transient;
  return Status::OK();
}

// --- Subscriber --------------------------------------------------------------

Status Subscriber::Subscribe(const std::string& key) {
  SubscribeMsg msg;
  msg.key = key;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      conn_->Call(FrameType::kSubscribe, enc.buffer(), &reply));
  return Connection::ExpectStatusReply(reply, nullptr);
}

Result<std::vector<Notification>> Subscriber::Fetch(uint32_t max,
                                                    uint32_t wait_ms) {
  FetchMsg msg;
  msg.max = max;
  msg.wait_ms = wait_ms;
  Encoder enc;
  msg.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      conn_->Call(FrameType::kFetchNotifications, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    Status s = Connection::ExpectStatusReply(reply, nullptr);
    if (s.ok()) s = Status::Internal("expected a notification batch");
    return s;
  }
  if (reply.type != FrameType::kNotificationBatch) {
    return Status::Internal("expected NotificationBatch");
  }
  SENTINEL_ASSIGN_OR_RETURN(NotificationBatchMsg batch,
                            NotificationBatchMsg::Decode(reply.body));
  return std::move(batch.items);
}

Result<std::vector<Notification>> Subscriber::HistoryScan(
    const HistoryScanMsg& query, bool* complete, HistoryScanMsg* resume) {
  Encoder enc;
  query.Encode(&enc);
  Frame reply;
  SENTINEL_RETURN_IF_ERROR(
      conn_->Call(FrameType::kHistoryScan, enc.buffer(), &reply));
  if (reply.type == FrameType::kStatusReply) {
    Status s = Connection::ExpectStatusReply(reply, nullptr);
    if (s.ok()) s = Status::Internal("expected a history batch");
    return s;
  }
  if (reply.type != FrameType::kHistoryBatch) {
    return Status::Internal("expected HistoryBatch");
  }
  SENTINEL_ASSIGN_OR_RETURN(HistoryBatchMsg batch,
                            HistoryBatchMsg::Decode(reply.body));
  if (complete != nullptr) *complete = batch.complete;
  if (resume != nullptr) {
    *resume = query;
    if (!batch.items.empty()) {
      resume->after_seq = batch.next_seq;
      resume->after_shard = batch.next_shard;
    }
  }
  return std::move(batch.items);
}

Result<std::vector<Notification>> Subscriber::HistoryScanAll(
    HistoryScanMsg query, uint32_t page_limit) {
  query.limit = page_limit;
  std::vector<Notification> all;
  while (true) {
    bool complete = false;
    SENTINEL_ASSIGN_OR_RETURN(std::vector<Notification> batch,
                              HistoryScan(query, &complete, &query));
    // An empty clamped page cannot advance the cursor; bail rather than
    // spin (it would take a server bug to produce one).
    const bool stuck = !complete && batch.empty();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
    if (complete) return all;
    if (stuck) return Status::Internal("history page empty but incomplete");
  }
}

// --- LocalPublisher ----------------------------------------------------------

namespace {

/// Expands one reply frame into per-request (status, payload) acks —
/// kStatusReply is one ack, kBatchStatusReply one per run count. The shm
/// and TCP paths share ack semantics by construction: both decode the
/// same frames.
Status ExpandAckFrame(const Frame& reply,
                      std::vector<std::pair<Status, uint64_t>>* out) {
  if (reply.type == FrameType::kStatusReply) {
    SENTINEL_ASSIGN_OR_RETURN(StatusReplyMsg msg,
                              StatusReplyMsg::Decode(reply.body));
    out->emplace_back(msg.ToStatus(), msg.payload);
    return Status::OK();
  }
  if (reply.type == FrameType::kBatchStatusReply) {
    SENTINEL_ASSIGN_OR_RETURN(BatchStatusReplyMsg batch,
                              BatchStatusReplyMsg::Decode(reply.body));
    for (const BatchStatusReplyMsg::Run& run : batch.runs) {
      StatusReplyMsg one;
      one.code = run.code;
      one.message = run.message;
      Status s = one.ToStatus();
      for (uint32_t i = 0; i < run.count; ++i) {
        out->emplace_back(s, run.payload);
      }
    }
    return Status::OK();
  }
  return Status::Internal("expected an ack frame, got type " +
                          std::to_string(static_cast<int>(reply.type)));
}

}  // namespace

Result<std::unique_ptr<LocalPublisher>> LocalPublisher::Open(
    Options options) {
  auto pub = std::unique_ptr<LocalPublisher>(new LocalPublisher());
  pub->window_ = options.window == 0 ? 1 : options.window;
  pub->ack_timeout_ms_ = options.ack_timeout_ms;
  if (!options.segment.empty()) {
    Result<std::unique_ptr<shmtp::ShmHandle>> attached =
        shmtp::ShmHandle::Attach(options.segment);
    if (attached.ok()) {
      pub->shm_ = std::move(attached).value();
      return pub;
    }
    // Any attach failure — segment absent, rings exhausted, layout
    // mismatch, host gone — downgrades to TCP, never to an error: the
    // caller asked for the gateway, not for a transport.
  }
  SENTINEL_ASSIGN_OR_RETURN(
      pub->conn_, Connection::Dial(options.host, options.port, options.tcp));
  pub->tcp_ = std::make_unique<Publisher>(pub->conn_.get(), pub->window_);
  return pub;
}

LocalPublisher::~LocalPublisher() = default;

Result<uint64_t> LocalPublisher::Raise(const std::string& class_name,
                                       const std::string& method,
                                       EventModifier modifier,
                                       const ValueList& params,
                                       uint64_t oid) {
  if (shm_ == nullptr) {
    return tcp_->Raise(class_name, method, modifier, params, oid);
  }
  RaiseEventMsg msg;
  msg.oid = oid;
  msg.class_name = class_name;
  msg.method = method;
  msg.modifier = modifier;
  msg.params = params;
  std::vector<RaiseEventMsg> one;
  one.push_back(std::move(msg));
  uint64_t payload = 0;
  SENTINEL_RETURN_IF_ERROR(RaisePipelinedShmInternal(one, nullptr, &payload));
  return payload;
}

Status LocalPublisher::RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                                      uint64_t* rejected) {
  if (rejected != nullptr) *rejected = 0;
  if (shm_ == nullptr) return tcp_->RaisePipelined(msgs, rejected);
  return RaisePipelinedShmInternal(msgs, rejected, nullptr);
}

Status LocalPublisher::RaisePipelinedShmInternal(
    const std::vector<RaiseEventMsg>& msgs, uint64_t* rejected,
    uint64_t* last_payload) {
  size_t sent = 0;
  size_t acked = 0;
  Status first_error = Status::OK();
  uint64_t rejected_count = 0;
  std::string wire;
  Encoder enc;  // Reused across the window loop: no per-raise allocation.
  std::vector<std::pair<Status, uint64_t>> acks;
  const auto ack_timeout = std::chrono::milliseconds(ack_timeout_ms_);
  while (acked < msgs.size()) {
    // Fill the window. A full job ring is not an error — the host is
    // momentarily behind; draining an ack below implies progress.
    bool ring_full = false;
    while (sent < msgs.size() && sent - acked < window_) {
      wire.clear();
      enc.Clear();
      msgs[sent].Encode(&enc);
      EncodeFrame(FrameType::kRaiseEvent, enc.buffer(), &wire, kProtocolV2);
      Status s = shm_->PushFrame(wire);
      if (s.IsResourceExhausted()) {
        ring_full = true;
        break;
      }
      SENTINEL_RETURN_IF_ERROR(s);
      ++sent;
    }
    if (acked == sent) {
      if (!ring_full) continue;
      // Nothing in flight yet the ring will not take one frame: it can
      // only drain by host progress, so yield rather than burn the core.
      std::this_thread::yield();
      continue;
    }
    Frame reply;
    SENTINEL_RETURN_IF_ERROR(shm_->ReadAckFrame(&reply, ack_timeout));
    acks.clear();
    SENTINEL_RETURN_IF_ERROR(ExpandAckFrame(reply, &acks));
    if (acked + acks.size() > sent) {
      return Status::Internal("shmtp host acked more raises than were sent");
    }
    for (const auto& [status, payload] : acks) {
      if (!status.ok()) {
        if (status.IsResourceExhausted() || status.IsBusy()) {
          ++rejected_count;
        }
        if (first_error.ok()) first_error = status;
      } else if (last_payload != nullptr) {
        *last_payload = payload;
      }
      ++acked;
    }
  }
  if (rejected != nullptr) *rejected = rejected_count;
  return first_error;
}

// --- GatewayClient (deprecated facade) ---------------------------------------

Result<std::unique_ptr<GatewayClient>> GatewayClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  SENTINEL_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                            Connection::Dial(host, port, options));
  return std::unique_ptr<GatewayClient>(new GatewayClient(std::move(conn)));
}

}  // namespace net
}  // namespace sentinel
