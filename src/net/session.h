// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Session: per-connection state of the event gateway, and NotificationHub:
// the registry that fans occurrences out to subscribed sessions.
//
// Thread ownership is strict (TSan-checked):
//   * inbuf / fd close — the owning IO shard's thread only (sessions are
//     pinned to one epoll thread for life).
//   * socket writes and the wq/wq_offset partial-write state — guarded by
//     the per-session wr_mu: the IO shard flushes on epoll edges, and a
//     worker that just queued an ack may flush directly when the writer
//     lock is uncontended (the sync-RPC fast path that skips one
//     worker→IO-thread handoff). The fd is closed under wr_mu so a direct
//     flush never races a concurrently reused descriptor.
//   * subscriptions / pending notifications / parked fetch — guarded by the
//     per-session note_mu: the session's owning worker parks fetches while
//     any raising worker's Broadcast may complete them, and the IO thread
//     reaps them on disconnect.
//   * the encoded outbox — shared; guarded by a per-session mutex, because
//     workers queue replies while the IO thread drains chunks, and a
//     backpressure rejection is queued directly from the IO thread.
//   * version / closed / inflight_raises / tenant — atomics crossed between
//     the IO shard and workers.
//
// Lock order: note_mu before out_mu_ (ReplyWithBatch queues the reply while
// holding note_mu); the hub's registry mutex is never held across either.

#ifndef SENTINEL_NET_SESSION_H_
#define SENTINEL_NET_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/wire.h"

namespace sentinel {
namespace net {

/// Admission-quota domain shared by every session that said Hello with the
/// same tenant name (plus one default domain for everything else). Owned by
/// the server; sessions hold raw pointers that stay valid until Stop().
struct TenantState {
  explicit TenantState(std::string name) : name(std::move(name)) {}
  const std::string name;
  std::atomic<uint32_t> inflight_raises{0};
};

/// One accepted gateway connection.
class Session {
 public:
  Session(uint64_t id, int fd) : fd(fd), id_(id) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Encodes (type, body) into a frame — stamped with the negotiated
  /// protocol version — and appends it to the outbox. Invokes the flush
  /// notifier (outside the outbox lock) when the outbox was empty, so the
  /// owning IO shard learns it has bytes to write.
  void QueueReply(FrameType type, const std::string& body);

  /// QueueReply without invoking the flush notifier. The caller takes on
  /// the obligation to either flush the outbox itself or call
  /// NotifyFlush() — used by the worker direct-flush fast path, which
  /// only wakes the IO shard when its own flush left residue.
  void QueueReplyQuiet(FrameType type, const std::string& body);

  /// Invokes the flush notifier unconditionally (pairs with
  /// QueueReplyQuiet when the direct flush could not finish the job).
  void NotifyFlush() {
    if (flush_notifier_) flush_notifier_(this);
  }

  /// Encodes `msg` into `type` and queues it.
  template <typename Msg>
  void Reply(FrameType type, const Msg& msg) {
    Encoder enc;
    msg.Encode(&enc);
    QueueReply(type, enc.buffer());
  }

  /// Appends all queued outbox chunks to `*wq` (the IO thread's write
  /// queue), preserving order with chunks the caller still holds from a
  /// partial writev.
  void TakeOutput(std::deque<std::string>* wq);

  bool HasOutput() const;

  /// Called whenever queued output transitions empty -> nonempty. Set once
  /// at accept time, before the session is shared with other threads.
  void SetFlushNotifier(std::function<void(Session*)> fn) {
    flush_notifier_ = std::move(fn);
  }

  /// Header version byte for frames sent to this peer: 0 until the session
  /// negotiated kProtocolV2 or later.
  uint8_t wire_version() const {
    uint8_t v = version.load(std::memory_order_relaxed);
    return v >= kProtocolV2 ? v : 0;
  }

  // --- IO-shard state (owning epoll thread only) -------------------------------

  int fd = -1;                ///< Socket; closed (and set to -1) under wr_mu.
  size_t io_shard = 0;        ///< Which epoll thread owns this socket.
  std::string inbuf;          ///< Unparsed received bytes.
  bool drop_after_flush = false;  ///< Close once the outbox drains
                                  ///< (set after a protocol error).

  // --- Writer state (guarded by wr_mu) -----------------------------------------

  std::mutex wr_mu;           ///< Serializes socket writes and wq state.
  std::deque<std::string> wq; ///< Chunks taken from the outbox, writev'd.
  size_t wq_offset = 0;       ///< Bytes of wq.front() already sent.

  // --- Cross-thread flags ------------------------------------------------------

  std::atomic<uint8_t> version{kProtocolV1};  ///< Negotiated protocol.
  std::atomic<bool> closed{false};       ///< Set when the IO shard reaps.
  std::atomic<bool> flush_queued{false}; ///< Deduplicates flush requests.
  std::atomic<uint32_t> inflight_raises{0};  ///< Admitted, not yet acked.
  std::atomic<TenantState*> tenant{nullptr};

  // --- Notification state (guarded by note_mu) --------------------------------

  std::mutex note_mu;                 ///< Guards everything below.
  std::set<std::string> subscriptions;
  std::deque<Notification> pending;   ///< Undelivered notifications.
  size_t pending_bytes = 0;           ///< Approximate bytes of `pending`.
  uint64_t dropped_notifications = 0; ///< Trimmed past the per-session caps.
  bool fetch_parked = false;          ///< A FetchNotifications waits here.
  uint32_t fetch_max = 0;
  std::chrono::steady_clock::time_point fetch_deadline{};

 private:
  const uint64_t id_;
  mutable std::mutex out_mu_;
  std::deque<std::string> outbox_;  ///< Encoded frames, coalesced in chunks.
  std::function<void(Session*)> flush_notifier_;
};

/// Per-session bounds applied when a notification is enqueued; exceeding
/// either cap trims the oldest pending entries (delivery stays lossy-FIFO,
/// the drop is counted, and the session keeps draining).
struct NotifyLimits {
  size_t max_count = 1024;
  size_t max_bytes = 4u << 20;
};

/// Registry of live sessions plus the subscription fan-out. Owned via
/// shared_ptr by the server *and* by the gateway's rule-action closure, so
/// a rule firing after the server stopped broadcasts into an empty hub
/// instead of a dangling pointer.
///
/// Fan-out is indexed: Broadcast touches only the sessions subscribed to
/// the key (a key -> session-id index maintained by Subscribe/Remove), and
/// parked long-polls sit in a deadline-ordered multimap so expiry pops due
/// entries instead of scanning every session. Both structures keep
/// Broadcast/expiry cost independent of the total session count — the
/// property the 10K-session plane is built on.
class NotificationHub {
 public:
  void Add(std::shared_ptr<Session> session);
  std::shared_ptr<Session> Find(uint64_t id) const;

  /// Deregisters the session and reaps its notification state: a fetch
  /// still parked when the socket dies is cancelled here, so Broadcast and
  /// the expiry scan never resurrect a dead session's long-poll, and its
  /// subscriptions leave the fan-out index with it.
  void Remove(uint64_t id);
  void Clear();
  size_t size() const;
  std::vector<std::shared_ptr<Session>> Snapshot() const;

  /// Adds `key` to the session's subscriptions and the fan-out index (any
  /// worker thread).
  void Subscribe(const std::shared_ptr<Session>& session,
                 const std::string& key);

  /// Parks a long-poll fetch on the session and registers its deadline for
  /// expiry (worker thread). The caller must have verified no fetch is
  /// already parked.
  void ParkFetch(const std::shared_ptr<Session>& session, uint32_t max,
                 std::chrono::steady_clock::time_point deadline);

  /// Delivers `n` to every session subscribed to `key` (mutator thread):
  /// appends to the session's pending queue (FIFO-trimmed at the count and
  /// byte caps in `limits`) and completes a parked fetch right away.
  /// Returns the number of sessions reached.
  size_t Broadcast(const std::string& key, const Notification& n,
                   const NotifyLimits& limits);

  /// Answers parked fetches whose deadline passed with whatever is pending
  /// (possibly an empty batch). Pops only due entries. Returns the
  /// expired-fetch count.
  size_t ExpireParkedFetches(std::chrono::steady_clock::time_point now);

  /// Earliest parked-fetch deadline, or `fallback` when none is parked.
  std::chrono::steady_clock::time_point NextDeadline(
      std::chrono::steady_clock::time_point fallback) const;

  uint64_t notifications_enqueued() const;
  uint64_t notifications_dropped() const;

  /// Wires the hub to the database's registry: Broadcast tallies
  /// net.notifications.enqueued/.dropped and records each reached session's
  /// post-enqueue pending-queue depth into net.session.backlog.
  void SetMetrics(MetricsRegistry* registry) {
    std::lock_guard<std::mutex> lock(mu_);
    m_enqueued_ = registry->counter("net.notifications.enqueued");
    m_dropped_ = registry->counter("net.notifications.dropped");
    m_backlog_ = registry->histogram("net.session.backlog");
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  /// Fan-out index: subscription key -> subscribed session ids.
  std::map<std::string, std::set<uint64_t>> subs_by_key_;
  /// Deadline-ordered parked fetches. Entries are lazily invalidated: a
  /// park completed early by Broadcast leaves its entry behind, and expiry
  /// skips it because the session is no longer parked.
  std::multimap<std::chrono::steady_clock::time_point, uint64_t> parked_;
  uint64_t enqueued_total_ = 0;
  uint64_t dropped_total_ = 0;
  /// Live subscription count across all sessions. Broadcast runs on every
  /// raising worker for every occurrence; this lets the no-subscriber case
  /// (the throughput path) return without taking any lock.
  std::atomic<size_t> sub_count_{0};
  Counter* m_enqueued_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Histogram* m_backlog_ = nullptr;

  /// Clears one session's notification state; returns the keys freed so
  /// the caller can drop them from the fan-out index.
  std::vector<std::string> ReapSessionState(Session* session);
};

/// Same as ReplyWithBatch but the caller already holds session->note_mu.
void ReplyWithBatchLocked(Session* session, uint32_t max);

/// Drains up to `max` pending notifications into a batch reply and queues
/// it on the session (mutator thread).
void ReplyWithBatch(Session* session, uint32_t max);

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_SESSION_H_
