// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Session: per-connection state of the event gateway, and NotificationHub:
// the registry that fans occurrences out to subscribed sessions.
//
// Thread ownership is strict (TSan-checked):
//   * fd / inbuf / unsent write chunk — IO thread only.
//   * subscriptions / pending notifications / parked fetch — guarded by the
//     per-session note_mu: the session's owning worker parks fetches while
//     any raising worker's Broadcast may complete them, and the IO thread
//     reaps them on disconnect.
//   * the encoded outbox — shared; guarded by a per-session mutex, because
//     workers queue replies while the IO thread drains bytes, and a
//     backpressure rejection is queued directly from the IO thread.
//
// Lock order: note_mu before out_mu_ (ReplyWithBatch queues the reply while
// holding note_mu); the hub's registry mutex is never held across either.

#ifndef SENTINEL_NET_SESSION_H_
#define SENTINEL_NET_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/wire.h"

namespace sentinel {
namespace net {

/// One accepted gateway connection.
class Session {
 public:
  Session(uint64_t id, int fd) : fd(fd), id_(id) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Encodes (type, body) into a frame and appends it to the outbox.
  void QueueReply(FrameType type, const std::string& body);

  /// Encodes `msg` into `type` and queues it.
  template <typename Msg>
  void Reply(FrameType type, const Msg& msg) {
    Encoder enc;
    msg.Encode(&enc);
    QueueReply(type, enc.buffer());
  }

  /// Moves all queued outbox bytes to the caller (IO thread), preserving
  /// order with any chunk the caller still holds from a partial write.
  std::string TakeOutput();

  bool HasOutput() const;

  // --- IO-thread state --------------------------------------------------------

  int fd = -1;               ///< Socket; -1 once closed.
  std::string inbuf;         ///< Unparsed received bytes.
  std::string unsent;        ///< Partial-write remainder, flushed first.
  bool drop_after_flush = false;  ///< Close once the outbox drains
                                  ///< (set after a protocol error).

  // --- Notification state (guarded by note_mu) --------------------------------

  std::mutex note_mu;                 ///< Guards everything below.
  std::set<std::string> subscriptions;
  std::deque<Notification> pending;   ///< Undelivered notifications.
  uint64_t dropped_notifications = 0; ///< Trimmed past the per-session cap.
  bool fetch_parked = false;          ///< A FetchNotifications waits here.
  uint32_t fetch_max = 0;
  std::chrono::steady_clock::time_point fetch_deadline{};

 private:
  const uint64_t id_;
  mutable std::mutex out_mu_;
  std::string outbox_;
};

/// Registry of live sessions plus the subscription fan-out. Owned via
/// shared_ptr by the server *and* by the gateway's rule-action closure, so
/// a rule firing after the server stopped broadcasts into an empty hub
/// instead of a dangling pointer.
class NotificationHub {
 public:
  void Add(std::shared_ptr<Session> session);
  std::shared_ptr<Session> Find(uint64_t id) const;

  /// Deregisters the session and reaps its notification state: a fetch
  /// still parked when the socket dies is cancelled here, so Broadcast and
  /// the expiry scan never resurrect a dead session's long-poll, and its
  /// subscriptions stop counting toward the fast-path subscriber check.
  void Remove(uint64_t id);
  void Clear();
  size_t size() const;
  std::vector<std::shared_ptr<Session>> Snapshot() const;

  /// Adds `key` to the session's subscriptions (any worker thread).
  void Subscribe(const std::shared_ptr<Session>& session,
                 const std::string& key);

  /// IO-thread waker invoked after replies are queued from the mutator
  /// thread (an empty function disables waking).
  void SetWake(std::function<void()> wake);

  /// Invokes the waker explicitly (batch-end flush, shutdown).
  void Wake() { WakeLocked(); }

  /// Delivers `n` to every session subscribed to `key` (mutator thread):
  /// appends to the session's pending queue (FIFO-trimmed at
  /// `max_pending`) and completes a parked fetch right away. Returns the
  /// number of sessions reached; wakes the IO thread when a reply was
  /// queued.
  size_t Broadcast(const std::string& key, const Notification& n,
                   size_t max_pending);

  /// Answers a parked fetch whose deadline passed with whatever is pending
  /// (possibly an empty batch). Returns expired-fetch count; wakes the IO
  /// thread when any reply was queued.
  size_t ExpireParkedFetches(std::chrono::steady_clock::time_point now);

  /// Earliest parked-fetch deadline, or `fallback` when none is parked.
  std::chrono::steady_clock::time_point NextDeadline(
      std::chrono::steady_clock::time_point fallback) const;

  uint64_t notifications_enqueued() const;
  uint64_t notifications_dropped() const;

  /// Wires the hub to the database's registry: Broadcast tallies
  /// net.notifications.enqueued/.dropped and records each reached session's
  /// post-enqueue pending-queue depth into net.session.backlog.
  void SetMetrics(MetricsRegistry* registry) {
    std::lock_guard<std::mutex> lock(mu_);
    m_enqueued_ = registry->counter("net.notifications.enqueued");
    m_dropped_ = registry->counter("net.notifications.dropped");
    m_backlog_ = registry->histogram("net.session.backlog");
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::function<void()> wake_;
  uint64_t enqueued_total_ = 0;
  uint64_t dropped_total_ = 0;
  /// Live subscription count across all sessions. Broadcast runs on every
  /// raising worker for every occurrence; this lets the no-subscriber case
  /// (the throughput path) return without touching any session.
  std::atomic<size_t> sub_count_{0};
  Counter* m_enqueued_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Histogram* m_backlog_ = nullptr;

  /// Clears one session's notification state; returns subscriptions freed.
  size_t ReapSessionState(Session* session);

  void WakeLocked();  // Copies the waker out of the lock before calling.
};

/// Same as ReplyWithBatch but the caller already holds session->note_mu.
void ReplyWithBatchLocked(Session* session, uint32_t max);

/// Drains up to `max` pending notifications into a batch reply and queues
/// it on the session (mutator thread).
void ReplyWithBatch(Session* session, uint32_t max);

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_SESSION_H_
