// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// GatewayClient: blocking client library for the Sentinel event gateway.
//
// One connection carries strictly sequential request/response exchanges
// (plus the optional pipelined raise path for throughput). Producers and
// consumers typically use separate connections so a consumer's long-poll
// never blocks a producer's raises — mirroring the paper's separation of
// the synchronous call interface from asynchronous event propagation.

#ifndef SENTINEL_NET_CLIENT_H_
#define SENTINEL_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace sentinel {
namespace net {

/// Blocking TCP client of a GatewayServer. Not thread safe; use one
/// instance per thread/connection.
class GatewayClient {
 public:
  /// Connects to host:port (IPv4 dotted quad).
  static Result<std::unique_ptr<GatewayClient>> Connect(
      const std::string& host, uint16_t port);

  ~GatewayClient();

  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Retry policy for transient server rejections (ResourceExhausted from
  /// ingress backpressure, Busy from lock contention). Transport errors are
  /// never retried — after a failed send/recv the connection state is
  /// unknown. Default: no retries.
  struct RetryPolicy {
    int max_attempts = 1;           ///< Total tries; 1 disables retry.
    uint32_t initial_backoff_ms = 1;
    uint32_t max_backoff_ms = 64;   ///< Backoff doubles up to this cap.
  };

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Transient-rejection retries performed across all calls (for tests).
  uint64_t retries_total() const { return retries_total_; }

  /// Round-trips a token through the server.
  Status Ping();

  /// Raises a primitive event remotely. `oid` 0 targets the server's
  /// default relay object for the class; returns the relay's oid so later
  /// raises can address the same instance.
  Result<uint64_t> RaiseEvent(const std::string& class_name,
                              const std::string& method,
                              EventModifier modifier, const ValueList& params,
                              uint64_t oid = 0);

  /// Sends `msgs` back to back, then collects one reply per message —
  /// keeping the ingress pipeline full instead of paying a round trip per
  /// raise. Returns OK when every raise was applied; otherwise the first
  /// non-OK reply (ResourceExhausted indicates backpressure). Under a
  /// retry policy, the rejected subset is re-sent (with backoff) until it
  /// drains or attempts run out. `*rejected` (optional) counts raises
  /// still rejected for backpressure after all retries.
  Status RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                        uint64_t* rejected = nullptr);

  /// Creates an ECA rule server-side. Empty action name = the gateway's
  /// subscriber-notify action; empty condition name = always true.
  Status CreateRule(const CreateRuleMsg& spec);

  Status EnableRule(const std::string& name);
  Status DisableRule(const std::string& name);

  /// Subscribes this connection to a notification key: an occurrence key
  /// ("end Employee::ChangeIncome") or a rule key ("rule:<name>").
  Status Subscribe(const std::string& key);

  /// Fetches up to `max` notifications, waiting up to `wait_ms` for the
  /// first (long-poll on the server; 0 returns immediately).
  Result<std::vector<Notification>> Fetch(uint32_t max, uint32_t wait_ms);

  /// Fetches the server's stats snapshot as a JSON document. `sections`
  /// selects what it covers (StatsRequestMsg::kDatabase / kGateway bits).
  Result<std::string> GetStats(
      uint32_t sections = StatsRequestMsg::kDatabase |
                          StatsRequestMsg::kGateway);

 private:
  explicit GatewayClient(int fd) : fd_(fd) {}

  /// Writes one request frame and reads the next response frame.
  Status Call(FrameType type, const std::string& body, Frame* reply);
  Status SendFrame(FrameType type, const std::string& body);
  Status ReadFrame(Frame* frame);
  /// Interprets a kStatusReply frame (error on other frame types).
  Status ExpectStatusReply(const Frame& reply, uint64_t* payload);

  /// True for statuses worth retrying: the server rejected the request
  /// transiently but the connection itself is healthy.
  static bool IsTransient(const Status& s) {
    return s.IsResourceExhausted() || s.IsBusy();
  }
  /// Sleeps for the current backoff and advances it (doubling to the cap).
  void Backoff(uint32_t* backoff_ms);

  int fd_ = -1;
  std::string inbuf_;  ///< Bytes read past the last complete frame.
  RetryPolicy retry_policy_;
  uint64_t retries_total_ = 0;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_CLIENT_H_
