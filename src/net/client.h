// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Client library for the Sentinel event gateway, split by role:
//
//   * Connection — one TCP connection: dialing, Hello-time protocol
//     negotiation, framing, and the unary control-plane calls (ping, rule
//     management, stats). Not thread safe; one instance per thread.
//   * Publisher — the producer role layered on a Connection: single raises
//     with retry, and windowed pipelined raises that keep a bounded number
//     of frames in flight while expanding the server's coalesced
//     BatchStatusReply acks back into per-request statuses.
//   * Subscriber — the consumer role: subscriptions and (long-poll)
//     notification fetches.
//
// Producers and consumers typically use separate connections so a
// consumer's long-poll never blocks a producer's raises — mirroring the
// paper's separation of the synchronous call interface from asynchronous
// event propagation. GatewayClient below bundles all three behind the
// pre-redesign monolithic API; new code should hold the pieces directly.

#ifndef SENTINEL_NET_CLIENT_H_
#define SENTINEL_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace sentinel {

namespace shmtp {
class ShmHandle;
}  // namespace shmtp

namespace net {

/// Retry policy for transient server rejections (ResourceExhausted from
/// backpressure or admission quotas, Busy from lock contention). Transport
/// errors are never retried — after a failed send/recv the connection state
/// is unknown. Default: no retries.
struct RetryPolicy {
  int max_attempts = 1;           ///< Total tries; 1 disables retry.
  uint32_t initial_backoff_ms = 1;
  uint32_t max_backoff_ms = 64;   ///< Backoff doubles up to this cap.
};

/// Dial-time options.
struct ClientOptions {
  /// Open with a Hello exchange. When the server predates Hello (it
  /// answers with an error or drops the connection), Dial transparently
  /// redials and speaks protocol v1 — new client, old server, no caller
  /// involvement.
  bool negotiate = true;
  uint8_t min_version = kProtocolV1;
  uint8_t max_version = kProtocolVersionMax;
  /// Admission-quota domain this connection bills to ("" = default tenant).
  std::string tenant;
};

/// One blocking TCP connection to a GatewayServer: socket, framing, and the
/// unary request/response calls every role needs. Not thread safe.
class Connection {
 public:
  /// Connects to host:port (IPv4 dotted quad) and, per `options`,
  /// negotiates the protocol version.
  static Result<std::unique_ptr<Connection>> Dial(const std::string& host,
                                                  uint16_t port,
                                                  ClientOptions options = {});

  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Protocol both sides settled on (kProtocolV1 when no Hello happened).
  uint8_t protocol_version() const { return version_; }
  /// Server's frame-body ceiling from the HelloReply (default when v1).
  uint32_t server_max_frame_body() const { return server_max_frame_body_; }
  /// Server banner from the HelloReply ("" when v1).
  const std::string& server_banner() const { return server_; }

  // --- Framing (exposed for pipelining, benchmarks, and tests) ---------------

  /// Writes one request frame (stamped with the negotiated version).
  Status SendFrame(FrameType type, const std::string& body);
  /// Writes pre-encoded frame bytes verbatim. Lets a pipelining caller (or
  /// a benchmark that must not encode inside its timed section) build the
  /// wire image up front.
  Status SendRaw(const std::string& bytes);
  /// Blocks until one whole response frame is available.
  Status ReadFrame(Frame* frame);
  /// SendFrame then ReadFrame: one strict request/response exchange.
  Status Call(FrameType type, const std::string& body, Frame* reply);
  /// Interprets a kStatusReply frame (error on other frame types).
  static Status ExpectStatusReply(const Frame& reply, uint64_t* payload);

  /// Encodes a frame exactly as SendFrame would, without sending — the
  /// building block for pre-encoded pipelined bursts.
  void EncodeFrameTo(FrameType type, const std::string& body,
                     std::string* out) const {
    EncodeFrame(type, body, out, wire_version());
  }

  // --- Unary control plane ---------------------------------------------------

  /// Round-trips a token through the server.
  Status Ping();

  /// Creates an ECA rule server-side. Empty action name = the gateway's
  /// subscriber-notify action; empty condition name = always true.
  Status CreateRule(const CreateRuleMsg& spec);

  Status EnableRule(const std::string& name);
  Status DisableRule(const std::string& name);

  /// Fetches the server's stats snapshot as a JSON document. `sections`
  /// selects what it covers (StatsRequestMsg::kDatabase / kGateway bits).
  Result<std::string> GetStats(
      uint32_t sections = StatsRequestMsg::kDatabase |
                          StatsRequestMsg::kGateway);

 private:
  explicit Connection(int fd) : fd_(fd) {}

  static Result<int> DialSocket(const std::string& host, uint16_t port);
  /// Runs the Hello exchange; OK with `*negotiated=false` means the server
  /// is pre-Hello and the caller should redial plain.
  Status Negotiate(const ClientOptions& options, bool* negotiated);
  Status RuleToggle(FrameType type, const std::string& name);

  uint8_t wire_version() const {
    return version_ >= kProtocolV2 ? version_ : 0;
  }

  int fd_ = -1;
  std::string inbuf_;  ///< Bytes read past the last complete frame.
  uint8_t version_ = kProtocolV1;
  uint32_t server_max_frame_body_ = kDefaultMaxFrameBody;
  std::string server_;
};

/// Producer role: raises events over a Connection it does not own. The
/// pipelined path keeps at most `window` raises in flight — enough to hide
/// the round trip, bounded so a slow server applies backpressure to the
/// producer instead of the producer ballooning both sides' buffers.
class Publisher {
 public:
  /// `connection` must outlive the Publisher. `window` of 0 means 1.
  explicit Publisher(Connection* connection, size_t window = 128);

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Transient-rejection retries performed across all calls (for tests).
  uint64_t retries_total() const { return retries_total_; }

  /// Raises a primitive event remotely. `oid` 0 targets the server's
  /// default relay object for the class; returns the relay's oid so later
  /// raises can address the same instance.
  Result<uint64_t> Raise(const std::string& class_name,
                         const std::string& method, EventModifier modifier,
                         const ValueList& params, uint64_t oid = 0);

  /// Sends `msgs` with up to `window` in flight, collecting one ack per
  /// message (expanded from coalesced BatchStatusReply frames when the
  /// server batches). Returns OK when every raise was applied; otherwise
  /// the first non-OK ack (ResourceExhausted indicates backpressure or a
  /// quota). A transient rejection mid-pipeline stalls the window: frames
  /// not yet on the wire are withheld (and reported rejected) instead of
  /// being pumped at a server that just said no. Under a retry policy, the
  /// rejected subset — refused and withheld alike — is re-sent (with
  /// backoff) until it drains or attempts run out. `*rejected` (optional)
  /// counts raises still rejected as transient after all retries.
  Status RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                        uint64_t* rejected = nullptr);

  /// No raise was transiently rejected (yet).
  static constexpr uint64_t kNoRejectedSeq = ~0ull;

  /// Index into the most recent RaisePipelined call's `msgs` of the first
  /// transiently rejected raise, or kNoRejectedSeq when none was. Set as
  /// soon as the rejection's ack is read — the point where the window
  /// stops advancing.
  uint64_t first_rejected_seq() const { return first_rejected_seq_; }

 private:
  /// One per-request ack, in request order.
  struct Ack {
    Status status;
    uint64_t payload = 0;
  };

  /// Reads one response frame and appends the ack(s) it settles.
  Status ReadAcks(std::vector<Ack>* out);
  /// One windowed pass over `pending`; fills `acks` 1:1 with it.
  Status SendWindowed(const std::vector<const RaiseEventMsg*>& pending,
                      std::vector<Ack>* acks);

  static bool IsTransient(const Status& s) {
    return s.IsResourceExhausted() || s.IsBusy();
  }
  /// Sleeps for the current backoff and advances it (doubling to the cap).
  void Backoff(uint32_t* backoff_ms);

  Connection* conn_;
  size_t window_;
  RetryPolicy retry_policy_;
  uint64_t retries_total_ = 0;
  uint64_t first_rejected_seq_ = kNoRejectedSeq;
};

/// Consumer role: subscriptions and notification fetches over a Connection
/// it does not own.
class Subscriber {
 public:
  /// `connection` must outlive the Subscriber.
  explicit Subscriber(Connection* connection) : conn_(connection) {}

  /// Subscribes the connection to a notification key: an occurrence key
  /// ("end Employee::ChangeIncome") or a rule key ("rule:<name>").
  Status Subscribe(const std::string& key);

  /// Fetches up to `max` notifications, waiting up to `wait_ms` for the
  /// first (long-poll on the server; 0 returns immediately).
  Result<std::vector<Notification>> Fetch(uint32_t max, uint32_t wait_ms);

  /// Replays the server's spilled occurrence history matching `query`
  /// (Notification encoding; the subscription key field stays empty). Sets
  /// `*complete` to false (when non-null) if the server clamped the result
  /// at its per-scan ceiling; when that happens, `*resume` (when non-null)
  /// holds `query` with its after_seq/after_shard cursor advanced past the
  /// last delivered row — pass it back to continue without duplicates.
  /// Requires the server database to run with history spill enabled;
  /// FailedPrecondition otherwise.
  Result<std::vector<Notification>> HistoryScan(const HistoryScanMsg& query,
                                                bool* complete = nullptr,
                                                HistoryScanMsg* resume =
                                                    nullptr);

  /// Pages HistoryScan to completion with `page_limit` rows per request
  /// (0 = the server's ceiling), following the resume cursor.
  Result<std::vector<Notification>> HistoryScanAll(HistoryScanMsg query,
                                                   uint32_t page_limit = 0);

 private:
  Connection* conn_;
};

/// Local-first producer: attaches to the gateway's shared-memory segment
/// (src/shmtp) when one is reachable and pushes raise frames with zero
/// syscalls on the hot path; otherwise it transparently dials TCP and
/// behaves exactly like a Publisher. The raise surface is a subset of
/// Publisher's, with identical semantics — acks are the same v2
/// StatusReply / ranged BatchStatusReply frames either way.
class LocalPublisher {
 public:
  struct Options {
    /// shm_open name of the server's segment; "" skips straight to TCP.
    std::string segment;
    /// TCP fallback target.
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Raises kept in flight by RaisePipelined (0 means 1).
    size_t window = 256;
    /// Per-ack wait bound on the shm path; expiring fails the call.
    uint32_t ack_timeout_ms = 5000;
    /// Dial options for the TCP fallback.
    ClientOptions tcp;
  };

  /// Attaches over shm, or — on any attach failure (no segment, rings
  /// exhausted, incompatible layout, dead host) — dials host:port.
  static Result<std::unique_ptr<LocalPublisher>> Open(Options options);

  ~LocalPublisher();

  LocalPublisher(const LocalPublisher&) = delete;
  LocalPublisher& operator=(const LocalPublisher&) = delete;

  /// True when raises travel through shared memory.
  bool via_shm() const { return shm_ != nullptr; }

  /// Single raise, strict request/response. Mirrors Publisher::Raise.
  Result<uint64_t> Raise(const std::string& class_name,
                         const std::string& method, EventModifier modifier,
                         const ValueList& params, uint64_t oid = 0);

  /// Windowed pipelined raises; mirrors Publisher::RaisePipelined without
  /// the retry machinery (one pass; `*rejected` counts transient
  /// rejections). On the shm path, backpressure is absorbed by the host's
  /// lossless deferral, so rejections only surface via quota acks.
  Status RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                        uint64_t* rejected = nullptr);

 private:
  LocalPublisher() = default;

  /// Shm-path windowed loop. `last_payload` (optional) receives the
  /// payload of the last OK ack — the relay oid for a single raise.
  Status RaisePipelinedShmInternal(const std::vector<RaiseEventMsg>& msgs,
                                   uint64_t* rejected,
                                   uint64_t* last_payload);

  std::unique_ptr<shmtp::ShmHandle> shm_;
  std::unique_ptr<Connection> conn_;      ///< TCP fallback (null with shm).
  std::unique_ptr<Publisher> tcp_;        ///< Lives on conn_.
  size_t window_ = 256;
  uint32_t ack_timeout_ms_ = 5000;
};

/// Deprecated monolithic client: the pre-redesign API, now a thin facade
/// over Connection + Publisher + Subscriber so existing call sites keep
/// compiling while they migrate to the role types.
class GatewayClient {
 public:
  static Result<std::unique_ptr<GatewayClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  Connection* connection() { return conn_.get(); }
  Publisher* publisher() { return &publisher_; }
  Subscriber* subscriber() { return &subscriber_; }

  using RetryPolicy = net::RetryPolicy;

  void set_retry_policy(const RetryPolicy& policy) {
    publisher_.set_retry_policy(policy);
  }
  const RetryPolicy& retry_policy() const {
    return publisher_.retry_policy();
  }
  uint64_t retries_total() const { return publisher_.retries_total(); }

  Status Ping() { return conn_->Ping(); }
  Result<uint64_t> RaiseEvent(const std::string& class_name,
                              const std::string& method,
                              EventModifier modifier, const ValueList& params,
                              uint64_t oid = 0) {
    return publisher_.Raise(class_name, method, modifier, params, oid);
  }
  Status RaisePipelined(const std::vector<RaiseEventMsg>& msgs,
                        uint64_t* rejected = nullptr) {
    return publisher_.RaisePipelined(msgs, rejected);
  }
  Status CreateRule(const CreateRuleMsg& spec) {
    return conn_->CreateRule(spec);
  }
  Status EnableRule(const std::string& name) {
    return conn_->EnableRule(name);
  }
  Status DisableRule(const std::string& name) {
    return conn_->DisableRule(name);
  }
  Status Subscribe(const std::string& key) {
    return subscriber_.Subscribe(key);
  }
  Result<std::vector<Notification>> Fetch(uint32_t max, uint32_t wait_ms) {
    return subscriber_.Fetch(max, wait_ms);
  }
  Result<std::string> GetStats(
      uint32_t sections = StatsRequestMsg::kDatabase |
                          StatsRequestMsg::kGateway) {
    return conn_->GetStats(sections);
  }

 private:
  explicit GatewayClient(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)),
        publisher_(conn_.get()),
        subscriber_(conn_.get()) {}

  std::unique_ptr<Connection> conn_;
  Publisher publisher_;
  Subscriber subscriber_;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_CLIENT_H_
