// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// GatewayServer: the Sentinel event gateway.
//
// The paper's reactive objects expose two interfaces: a conventional
// synchronous one and an event interface whose occurrences propagate
// asynchronously to consumers. The gateway extends both across process
// boundaries while preserving the core's threading model:
//
//   IO shards (epoll, edge-trig) --> per-shard ingress queues --> N workers
//
// `ServerOptions::io_threads` epoll threads own the sockets: each accepted
// connection is pinned to the shard `fd % io_threads` for its whole life,
// so every socket is read, written, and closed by exactly one thread, and
// per-connection cost stays O(1) in the total session count (no poll-set
// rebuild, no O(sessions) scans). Egress is batched: replies accumulate in
// per-session outbox chunks and each drain writes them with one writev;
// consecutive raise acks for a v2 session coalesce into ranged
// BatchStatusReply frames. On top of the bounded ingress queues, admission
// quotas (per-session and per-tenant in-flight raises, per-session queued
// notify bytes) stop one hot client from starving the plane: quota hits
// answer ResourceExhausted immediately from the IO shard.
//
// Worker threads are unchanged in role: one per raise shard
// (N = Database::raise_shards(), 1 by default — exactly the paper's single
// mutator) drains its queue in batches. Routing keys RaiseEvent frames by
// the requested oid (class-name hash for oid 0, i.e. class-default relays)
// and everything else by session id, so a given reactive object is only
// ever touched by its owning worker — the per-object serialization the
// sharded facade requires (core/shard.h).
//
// Reply-order caveat with N > 1: frames from one session that hash to
// different shards may be answered out of request order (each worker
// preserves order for its own frames). Raises against a single oid — and
// every non-raise request — keep strict FIFO per session. Additionally, a
// NotificationBatch completing a parked long-poll may overtake coalesced
// raise acks still buffered in the same worker batch; a client blocked in
// a long-poll by definition has no raises outstanding on that connection,
// so the stream it observes is unchanged.
//
// Remote producers RaiseEvent on server-side relay reactive objects; remote
// consumers Subscribe to occurrence keys ("end Employee::ChangeIncome") or
// rule-firing keys ("rule:<name>") and pull batches with FetchNotifications
// (long-poll: a parked fetch completes the moment a matching occurrence is
// raised). Rules created over the wire reference registry-named conditions
// and actions; the built-in "gateway.notify" action broadcasts a rule's
// firing to its "rule:<name>" subscribers.

#ifndef SENTINEL_NET_SERVER_H_
#define SENTINEL_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "net/ingress_queue.h"
#include "net/self_pipe.h"
#include "net/session.h"
#include "net/wire.h"

namespace sentinel {

namespace shmtp {
class ShmHost;
}  // namespace shmtp

namespace net {

/// FunctionRegistry name of the built-in rule action that notifies
/// "rule:<name>" subscribers (the default for remotely created rules).
extern const char kNotifySubscribersAction[];

/// Every knob of the gateway, in one place.
struct ServerOptions {
  // --- Listener ---------------------------------------------------------------
  std::string host = "127.0.0.1";
  uint16_t port = 0;             ///< 0 picks an ephemeral port.

  // --- IO plane ---------------------------------------------------------------
  size_t io_threads = 1;         ///< Epoll shards; sessions pinned by fd hash.
  uint32_t max_frame_body = kDefaultMaxFrameBody;

  // --- Ingress / drain --------------------------------------------------------
  size_t ingress_capacity = 1024;
  size_t max_batch = 64;         ///< Requests drained per mutator wakeup.

  // --- Admission quotas (0 = unlimited) ---------------------------------------
  /// Raises one session may have admitted-but-unacked; beyond it the IO
  /// shard answers ResourceExhausted without touching the ingress queue.
  uint32_t max_inflight_raises = 0;
  /// Same bound summed over every session of one tenant (Hello names the
  /// tenant; sessions that never said Hello share the default tenant).
  uint32_t tenant_max_inflight_raises = 0;
  /// Distinct *named* tenants the server will materialize quota state for
  /// (the always-present default tenant does not count). TenantState is
  /// never freed, so without a cap a hostile peer could grow server memory
  /// one Hello at a time; past the cap, new tenant names bill the default
  /// tenant's quota domain instead of allocating. 0 = unlimited.
  size_t max_tenants = 256;

  // --- Notification egress ----------------------------------------------------
  size_t max_pending_notifications = 1024;  ///< Per-session, FIFO-trimmed.
  size_t max_pending_notify_bytes = 4u << 20;  ///< Per-session byte cap.

  /// Register unknown classes on first RaiseEvent (reactive, with the
  /// raised method designated begin+end). Off: such raises fail NotFound.
  bool auto_register_classes = true;

  // --- Shared-memory local transport (src/shmtp) ------------------------------
  /// shm_open name of the local-producer segment, e.g. "/sentinel-gw".
  /// Must start with '/'. Empty (the default) disables the transport.
  std::string shm_segment;
  /// Producer ring slots: the number of local handles attachable at once.
  uint32_t shm_rings = 4;
  /// Per-ring job (producer -> host) byte capacity.
  uint64_t shm_ring_bytes = 1u << 20;
  /// Per-ring completion (host -> producer) byte capacity.
  uint64_t shm_completion_bytes = 256u << 10;
};

/// Deprecated name of ServerOptions, kept so pre-redesign call sites
/// compile while they migrate.
using GatewayOptions = ServerOptions;

/// Counters exposed for benchmarks and tests (all monotone).
struct GatewayStats {
  uint64_t frames_received = 0;
  uint64_t requests_processed = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t quota_rejections = 0;  ///< Subset of backpressure: quota hits.
  uint64_t protocol_errors = 0;
  uint64_t notifications_enqueued = 0;
  uint64_t notifications_dropped = 0;
  uint64_t sessions_accepted = 0;
  uint64_t batched_acks = 0;  ///< Acks delivered inside BatchStatusReplies.
  uint64_t inline_raises = 0;  ///< Raises executed on the IO thread (sync
                               ///< fast path: idle shard, lone frame).

  // Shared-memory local transport (0s when shm_segment is unset).
  uint64_t shm_frames = 0;    ///< Raise frames admitted from shm rings.
  uint64_t shm_batches = 0;   ///< Shard-queue batches those frames rode in.
  uint64_t shm_parks = 0;     ///< Host intake futex parks.
  uint64_t shm_wakeups = 0;   ///< Parks ended by a producer doorbell.
  uint64_t shm_attaches = 0;  ///< Rings claimed by local handles.
  uint64_t shm_reclaims = 0;  ///< Rings reclaimed (crash or clean close).
};

/// Serves kReplSubscribe frames. Implemented by repl::Replicator; an
/// abstract seam here keeps net/ free of a dependency on src/repl (which
/// itself depends on net/ for the follower's client side).
class ReplicationHandler {
 public:
  virtual ~ReplicationHandler() = default;
  /// Fills `*reply` for one replication poll. Must be safe to call from
  /// any gateway worker thread.
  virtual Status HandleReplSubscribe(const ReplSubscribeMsg& msg,
                                     ReplBatchMsg* reply) = 0;
};

/// TCP front end for one Database. The caller must keep `db` alive until
/// Stop()/destruction, and after Start() must not mutate `db` from other
/// threads (the gateway's worker threads own the facade's raise path).
class GatewayServer {
 public:
  GatewayServer(Database* db, ServerOptions options = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Binds, registers the notify action + occurrence observer, and spawns
  /// the IO shards plus one worker per raise shard.
  Status Start();

  /// Drains in-flight requests, closes every session, joins all threads.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with port 0).
  uint16_t port() const { return port_; }

  size_t session_count() const { return hub_->size(); }
  /// Shard 0's queue — the only one when the database is unsharded.
  const IngressQueue* ingress() const { return queues_[0].get(); }
  size_t worker_count() const { return queues_.size(); }
  size_t io_thread_count() const { return io_shards_.size(); }
  /// Materialized tenant quota domains, the default one included.
  size_t tenant_count() const;
  GatewayStats stats() const;

  /// Attaches the replication handler serving kReplSubscribe (nullptr
  /// detaches; such frames then answer FailedPrecondition). The handler
  /// must outlive the server or be detached before it dies. Set before
  /// Start() or from a quiesced server only.
  void SetReplication(ReplicationHandler* repl) { repl_ = repl; }

 private:
  /// One epoll thread plus everything pinned to it. Sessions are handed to
  /// a shard at accept time and never migrate.
  struct IoShard {
    size_t index = 0;
    int epoll_fd = -1;
    SelfPipe wake;           ///< Cross-thread nudge into epoll_wait.
    std::thread thread;
    /// Sessions owned by this shard (this thread only).
    std::map<uint64_t, std::shared_ptr<Session>> sessions;
    /// Accepted fds handed over by the accepting shard.
    std::mutex incoming_mu;
    std::vector<int> incoming_fds;
    /// Sessions whose outbox went nonempty since the last drain.
    std::mutex flush_mu;
    std::vector<uint64_t> flush_ids;
    /// Per-worker-shard frame staging reused across reads (this thread
    /// only) so routing a burst costs no allocations.
    std::vector<std::vector<IngressItem>> staging;
  };

  void IoLoop(size_t io);
  /// Drains shard `shard`'s queue; binds the thread to that raise shard.
  void WorkerLoop(size_t shard);

  // --- IO shard helpers -------------------------------------------------------
  void AcceptPending(IoShard* io);
  /// Registers fds other shards accepted on our behalf.
  void AdoptIncoming(IoShard* io);
  /// Registers one connected fd with `io` and the hub.
  void RegisterSession(IoShard* io, int fd);
  /// Reads to EAGAIN (edge-triggered), splits frames, applies admission
  /// quotas, routes to shard queues; returns false when the session died.
  bool DrainSocket(IoShard* io, const std::shared_ptr<Session>& session);
  /// The shard queue `frame` must be processed on.
  size_t RouteFrame(const Session* session, const Frame& frame) const;
  /// writev's queued output until EAGAIN or empty; returns false when the
  /// session died. Takes the session's writer lock.
  bool FlushSocket(Session* session);
  /// FlushSocket body; caller holds session->wr_mu.
  bool FlushSocketLocked(Session* session);
  /// Worker-side direct flush: if the writer lock is free, writes the
  /// just-queued replies from the worker thread, skipping the wake-pipe
  /// handoff to the IO shard. On contention, residue, or a dead socket
  /// it falls back to notifying the owning shard. Pairs with
  /// Session::QueueReplyQuiet.
  void WorkerFlush(const std::shared_ptr<Session>& session);
  /// True when neither staged wq chunks nor outbox bytes remain.
  bool OutboxDrained(Session* session);
  /// Flushes every session queued on the shard's flush list.
  void DrainFlushQueue(IoShard* io);
  void CloseSession(IoShard* io, uint64_t id);
  /// Undoes admission charges for items a full queue bounced.
  void UnchargeRejected(const std::vector<IngressItem>& items);

  // --- Worker thread helpers --------------------------------------------------
  /// Buffers consecutive same-session raise acks so a drain can answer
  /// them with one ranged BatchStatusReply (v2 sessions) instead of a
  /// frame per raise. Order within a session is preserved: any non-ack
  /// reply flushes the buffer first.
  class AckBatcher {
   public:
    explicit AckBatcher(GatewayServer* server) : server_(server) {}
    /// Queues `msg` as the ack for one raise on `session` (may buffer).
    void Ack(const std::shared_ptr<Session>& session,
             const StatusReplyMsg& msg);
    /// Flushes buffered acks for one session (before a non-ack reply).
    void FlushSession(Session* session);
    /// Flushes everything (end of drain batch).
    void FlushAll();

   private:
    GatewayServer* server_;
    struct Pending {
      std::shared_ptr<Session> session;
      std::vector<BatchStatusReplyMsg::Run> runs;
      size_t total = 0;
    };
    /// At most max_batch sessions per drain; linear scan beats hashing.
    std::vector<Pending> pending_;
    void Emit(Pending* p);
  };

  void ProcessItem(size_t shard, const IngressItem& item, AckBatcher* acks);
  StatusReplyMsg HandleRaiseEvent(size_t shard, const RaiseEventMsg& msg);
  StatusReplyMsg HandleCreateRule(const CreateRuleMsg& msg);
  StatusReplyMsg HandleRuleToggle(const RuleNameMsg& msg, bool enable);
  StatusReplyMsg HandleSubscribe(const std::shared_ptr<Session>& session,
                                 const SubscribeMsg& msg);
  void HandleHello(const std::shared_ptr<Session>& session,
                   const HelloMsg& msg);
  void HandleFetch(const std::shared_ptr<Session>& session,
                   const FetchMsg& msg);
  void HandleGetStats(Session* session, const StatsRequestMsg& msg);
  /// Replays spilled occurrence history (Database::HistoryScan) back to the
  /// session as a HistoryBatch. The request limit is clamped so one scan
  /// cannot balloon a reply frame past the session's negotiated cap.
  void HandleHistoryScan(Session* session, const HistoryScanMsg& msg);
  /// Forwards one replication poll to the attached handler and answers
  /// with a kReplBatch (or an error StatusReply when none is attached).
  void HandleReplSubscribe(Session* session, const ReplSubscribeMsg& msg);
  /// Renders the StatsReply JSON for the requested section bits. Runs on a
  /// worker thread; counters are exact only once writers quiesce.
  std::string BuildStatsJson(uint32_t sections) const;
  /// Finds or creates the relay reactive object remote raises act on.
  /// Relay maps are per-shard: only shard `shard`'s worker touches them.
  Result<ReactiveObject*> RelayFor(size_t shard,
                                   const std::string& class_name,
                                   const std::string& method, uint64_t oid);
  /// The quota domain for `name`, creating it on first use.
  TenantState* TenantFor(const std::string& name);

  Database* db_;
  ServerOptions options_;
  ReplicationHandler* repl_ = nullptr;
  NotifyLimits notify_limits_;
  std::shared_ptr<NotificationHub> hub_;
  /// One bounded queue per raise shard, each with the configured capacity.
  std::vector<std::unique_ptr<IngressQueue>> queues_;
  /// Per-shard execution lock: the shard's worker holds it across each
  /// drain — including the queue pop itself, so an item never sits popped
  /// but unexecuted while the lock is free — and an IO thread try-locks it
  /// to execute a lone raise inline when the shard queue is empty (the
  /// sync fast path — two context switches per RPC instead of three).
  /// Queue empty under this lock therefore means every admitted frame has
  /// been processed and acked, so the inline raise overtakes nothing.
  /// Per-object serialization is preserved: only one thread runs a shard's
  /// mutator rounds at a time.
  std::vector<std::unique_ptr<std::mutex>> exec_mu_;
  Database::ObserverHandle observer_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<IoShard>> io_shards_;
  std::vector<std::thread> workers_;
  /// Shared-memory local transport host (null unless shm_segment is set).
  /// Intake stops before the queues shut down; the host itself outlives
  /// the workers, whose ack flushes write into its completion regions.
  std::unique_ptr<shmtp::ShmHost> shm_host_;

  std::atomic<uint64_t> next_session_id_{1};

  /// Tenant quota domains, created at Hello ("" = default, created at
  /// Start). Addresses must stay stable while sessions hold raw pointers,
  /// hence unique_ptr values; mutated only under tenants_mu_.
  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  /// Relay objects workers materialized for remote raises, keyed by
  /// (class, requested oid; 0 = the class's default relay), one map per
  /// shard — a relay is only ever created and used by its owning worker.
  std::vector<
      std::map<std::pair<std::string, uint64_t>, std::unique_ptr<ReactiveObject>>>
      relays_;

  // Stats counters; IO and mutator threads bump disjoint subsets.
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> requests_processed_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
  std::atomic<uint64_t> quota_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> batched_acks_{0};
  std::atomic<uint64_t> inline_raises_{0};
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_SERVER_H_
