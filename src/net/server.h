// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// GatewayServer: the Sentinel event gateway.
//
// The paper's reactive objects expose two interfaces: a conventional
// synchronous one and an event interface whose occurrences propagate
// asynchronously to consumers. The gateway extends both across process
// boundaries while preserving the core's threading model:
//
//   socket threads (poll loop) --> per-shard ingress queues --> N workers
//
// The IO thread accepts connections, splits length-prefixed frames, routes
// each to a shard queue, and enqueues; one worker thread per raise shard
// (N = Database::raise_shards(), 1 by default — exactly the paper's single
// mutator) drains its queue in batches. Routing keys RaiseEvent frames by
// the requested oid (class-name hash for oid 0, i.e. class-default relays)
// and everything else by session id, so a given reactive object is only
// ever touched by its owning worker — the per-object serialization the
// sharded facade requires (core/shard.h). When a worker falls behind, its
// ingress queue rejects with ResourceExhausted and the IO thread answers
// the client with that backpressure signal immediately.
//
// Reply-order caveat with N > 1: frames from one session that hash to
// different shards may be answered out of request order (each worker
// preserves order for its own frames). Raises against a single oid — and
// every non-raise request — keep strict FIFO per session.
//
// Remote producers RaiseEvent on server-side relay reactive objects; remote
// consumers Subscribe to occurrence keys ("end Employee::ChangeIncome") or
// rule-firing keys ("rule:<name>") and pull batches with FetchNotifications
// (long-poll: a parked fetch completes the moment a matching occurrence is
// raised). Rules created over the wire reference registry-named conditions
// and actions; the built-in "gateway.notify" action broadcasts a rule's
// firing to its "rule:<name>" subscribers.

#ifndef SENTINEL_NET_SERVER_H_
#define SENTINEL_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "net/ingress_queue.h"
#include "net/self_pipe.h"
#include "net/session.h"
#include "net/wire.h"

namespace sentinel {
namespace net {

/// FunctionRegistry name of the built-in rule action that notifies
/// "rule:<name>" subscribers (the default for remotely created rules).
extern const char kNotifySubscribersAction[];

/// Tuning knobs of the gateway.
struct GatewayOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;             ///< 0 picks an ephemeral port.
  size_t ingress_capacity = 1024;
  size_t max_batch = 64;         ///< Requests drained per mutator wakeup.
  uint32_t max_frame_body = kDefaultMaxFrameBody;
  size_t max_pending_notifications = 1024;  ///< Per-session, FIFO-trimmed.
  /// Register unknown classes on first RaiseEvent (reactive, with the
  /// raised method designated begin+end). Off: such raises fail NotFound.
  bool auto_register_classes = true;
};

/// Counters exposed for benchmarks and tests (all monotone).
struct GatewayStats {
  uint64_t frames_received = 0;
  uint64_t requests_processed = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t protocol_errors = 0;
  uint64_t notifications_enqueued = 0;
  uint64_t notifications_dropped = 0;
  uint64_t sessions_accepted = 0;
};

/// TCP front end for one Database. The caller must keep `db` alive until
/// Stop()/destruction, and after Start() must not mutate `db` from other
/// threads (the gateway's worker threads own the facade's raise path).
class GatewayServer {
 public:
  GatewayServer(Database* db, GatewayOptions options = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Binds, registers the notify action + occurrence observer, and spawns
  /// the IO thread plus one worker per raise shard.
  Status Start();

  /// Drains in-flight requests, closes every session, joins all threads.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with port 0).
  uint16_t port() const { return port_; }

  size_t session_count() const { return hub_->size(); }
  /// Shard 0's queue — the only one when the database is unsharded.
  const IngressQueue* ingress() const { return queues_[0].get(); }
  size_t worker_count() const { return queues_.size(); }
  GatewayStats stats() const;

 private:
  void IoLoop();
  /// Drains shard `shard`'s queue; binds the thread to that raise shard.
  void WorkerLoop(size_t shard);

  // --- IO thread helpers ------------------------------------------------------
  void AcceptPending();
  /// Reads, splits frames, routes each to its shard queue (batched per
  /// queue); returns false when the session died.
  bool DrainSocket(Session* session);
  /// The shard queue `frame` must be processed on.
  size_t RouteFrame(const Session* session, const Frame& frame) const;
  /// Flushes queued output; returns false when the session died.
  bool FlushSocket(Session* session);
  void CloseSession(uint64_t id);

  // --- Worker thread helpers --------------------------------------------------
  void ProcessItem(size_t shard, const IngressItem& item);
  StatusReplyMsg HandleRaiseEvent(size_t shard, const RaiseEventMsg& msg);
  StatusReplyMsg HandleCreateRule(const CreateRuleMsg& msg);
  StatusReplyMsg HandleRuleToggle(const RuleNameMsg& msg, bool enable);
  StatusReplyMsg HandleSubscribe(const std::shared_ptr<Session>& session,
                                 const SubscribeMsg& msg);
  void HandleFetch(Session* session, const FetchMsg& msg);
  void HandleGetStats(Session* session, const StatsRequestMsg& msg);
  /// Renders the StatsReply JSON for the requested section bits. Runs on a
  /// worker thread; counters are exact only once writers quiesce.
  std::string BuildStatsJson(uint32_t sections) const;
  /// Finds or creates the relay reactive object remote raises act on.
  /// Relay maps are per-shard: only shard `shard`'s worker touches them.
  Result<ReactiveObject*> RelayFor(size_t shard,
                                   const std::string& class_name,
                                   const std::string& method, uint64_t oid);

  Database* db_;
  GatewayOptions options_;
  std::shared_ptr<NotificationHub> hub_;
  /// One bounded queue per raise shard, each with the configured capacity.
  std::vector<std::unique_ptr<IngressQueue>> queues_;
  Database::ObserverHandle observer_;

  int listen_fd_ = -1;
  SelfPipe wake_pipe_;  ///< Wakes the poll loop (robust EINTR/EAGAIN).
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// IO-thread view of sessions (fd -> session). The hub owns the shared
  /// registry; this map only drives the poll set.
  std::map<uint64_t, std::shared_ptr<Session>> io_sessions_;
  uint64_t next_session_id_ = 1;
  /// Per-shard frame staging reused across DrainSocket calls (IO thread
  /// only) so routing a burst costs no allocations.
  std::vector<std::vector<IngressItem>> io_staging_;

  /// Relay objects workers materialized for remote raises, keyed by
  /// (class, requested oid; 0 = the class's default relay), one map per
  /// shard — a relay is only ever created and used by its owning worker.
  std::vector<
      std::map<std::pair<std::string, uint64_t>, std::unique_ptr<ReactiveObject>>>
      relays_;

  // Stats counters; IO and mutator threads bump disjoint subsets.
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> requests_processed_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_SERVER_H_
