// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// SelfPipe: the classic self-pipe trick, hardened. The gateway's worker
// threads wake the IO poll loop by writing one byte into a pipe whose read
// end sits in the poll set. The subtlety is on the write side:
//
//   * EINTR must be retried — an unretried interrupted write when the pipe
//     is EMPTY silently loses the wakeup, and a parked long-poll reply then
//     waits out the full poll timeout instead of flushing immediately.
//   * EAGAIN (pipe full) is success, not failure: a full pipe already
//     guarantees the reader has a pending POLLIN, so the wakeup coalesces.
//
// The read side drains until EAGAIN (retrying EINTR) so coalesced wakeups
// collapse into one poll iteration.

#ifndef SENTINEL_NET_SELF_PIPE_H_
#define SENTINEL_NET_SELF_PIPE_H_

#include "common/status.h"

namespace sentinel {
namespace net {

class SelfPipe {
 public:
  SelfPipe() = default;
  ~SelfPipe() { Close(); }

  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  /// Creates the pipe; both ends are made non-blocking.
  Status Open();

  /// True between a successful Open() and Close().
  bool valid() const { return read_fd_ >= 0; }

  /// Poll this fd for POLLIN.
  int read_fd() const { return read_fd_; }

  /// Write end, exposed for tests that fill the pipe externally.
  int write_fd() const { return write_fd_; }

  /// Signals the reader. Retries EINTR; treats EAGAIN (full pipe) as a
  /// delivered — coalesced — wakeup. Safe from any thread.
  void Wake();

  /// Consumes every buffered wakeup byte (call when read_fd polls
  /// readable). Retries EINTR, stops at EAGAIN.
  void Drain();

  /// Closes both ends. Idempotent.
  void Close();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINEL_NET_SELF_PIPE_H_
