// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/self_pipe.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sentinel {
namespace net {

namespace {
Status MakeNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}
}  // namespace

Status SelfPipe::Open() {
  Close();
  int fds[2];
  if (::pipe(fds) < 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  Status s = MakeNonBlocking(read_fd_);
  if (s.ok()) s = MakeNonBlocking(write_fd_);
  if (!s.ok()) Close();
  return s;
}

void SelfPipe::Wake() {
  if (write_fd_ < 0) return;
  char byte = 1;
  while (true) {
    ssize_t n = ::write(write_fd_, &byte, 1);
    if (n == 1) return;
    if (n < 0 && errno == EINTR) continue;  // Interrupted: the byte never
                                            // landed — retry or the wakeup
                                            // is lost.
    // EAGAIN/EWOULDBLOCK: the pipe is full, so the reader has an
    // unconsumed POLLIN pending — this wakeup coalesces with it. Any other
    // error (EBADF after Close) is dropped: there is no reader to wake.
    return;
  }
}

void SelfPipe::Drain() {
  if (read_fd_ < 0) return;
  char buf[256];
  while (true) {
    ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN (empty) or error: drained.
  }
}

void SelfPipe::Close() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

}  // namespace net
}  // namespace sentinel
