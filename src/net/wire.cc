// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/wire.h"

#include <algorithm>

namespace sentinel {
namespace net {

namespace {

/// Rejects trailing bytes after a fully parsed body: a well-formed peer
/// never pads, so leftovers mean a framing bug or a hostile stream.
Status ExpectEnd(const Decoder& dec) {
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message body");
  }
  return Status::OK();
}

Status DecodeModifier(Decoder* dec, EventModifier* out) {
  uint8_t raw = 0;
  SENTINEL_RETURN_IF_ERROR(dec->GetU8(&raw));
  if (raw > static_cast<uint8_t>(EventModifier::kEnd)) {
    return Status::InvalidArgument("bad event modifier " +
                                   std::to_string(raw));
  }
  *out = static_cast<EventModifier>(raw);
  return Status::OK();
}

}  // namespace

bool IsKnownFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kPing:
    case FrameType::kRaiseEvent:
    case FrameType::kCreateRule:
    case FrameType::kEnableRule:
    case FrameType::kDisableRule:
    case FrameType::kSubscribe:
    case FrameType::kFetchNotifications:
    case FrameType::kGetStats:
    case FrameType::kHello:
    case FrameType::kHistoryScan:
    case FrameType::kReplSubscribe:
    case FrameType::kHistoryBatch:
    case FrameType::kPong:
    case FrameType::kStatusReply:
    case FrameType::kNotificationBatch:
    case FrameType::kStatsReply:
    case FrameType::kHelloReply:
    case FrameType::kBatchStatusReply:
    case FrameType::kReplBatch:
      return true;
  }
  return false;
}

void EncodeFrame(FrameType type, const std::string& body, std::string* out,
                 uint8_t version) {
  Encoder enc;
  // Length and version share one little-endian u32: low 24 bits length,
  // high byte version. Version-0 output is byte-identical to pre-versioning
  // frames.
  enc.PutU32(static_cast<uint32_t>(body.size()) |
             (static_cast<uint32_t>(version) << 24));
  enc.PutU8(static_cast<uint8_t>(type));
  out->append(enc.buffer());
  out->append(body);
}

DecodeProgress TryDecodeFrame(std::string_view buf, uint32_t max_body,
                              Frame* frame, size_t* consumed, Status* error) {
  *consumed = 0;
  if (buf.size() < kFrameHeaderSize) return DecodeProgress::kNeedMore;

  Decoder header(buf.data(), kFrameHeaderSize);
  uint32_t len_word = 0;
  uint8_t raw_type = 0;
  header.GetU32(&len_word).ok();
  header.GetU8(&raw_type).ok();
  uint32_t body_len = len_word & kFrameBodyLimit;
  uint8_t version = static_cast<uint8_t>(len_word >> 24);

  // Validate the header before waiting for the body: an oversized length,
  // an unknown type, or a version from the future can never become a good
  // frame, so fail fast.
  if (version > kProtocolVersionMax) {
    *error = Status::InvalidArgument("unsupported protocol version " +
                                     std::to_string(version));
    return DecodeProgress::kError;
  }
  if (body_len > max_body) {
    *error = Status::ResourceExhausted(
        "frame body of " + std::to_string(body_len) + " bytes exceeds cap " +
        std::to_string(max_body));
    return DecodeProgress::kError;
  }
  if (!IsKnownFrameType(raw_type)) {
    *error = Status::InvalidArgument("unknown frame type " +
                                     std::to_string(raw_type));
    return DecodeProgress::kError;
  }
  if (buf.size() < kFrameHeaderSize + body_len) return DecodeProgress::kNeedMore;

  frame->type = static_cast<FrameType>(raw_type);
  frame->version = version;
  frame->body.assign(buf.substr(kFrameHeaderSize, body_len));
  *consumed = kFrameHeaderSize + body_len;
  return DecodeProgress::kFrame;
}

// --- PingMsg ----------------------------------------------------------------

void PingMsg::Encode(Encoder* enc) const { enc->PutU64(token); }

Result<PingMsg> PingMsg::Decode(const std::string& body) {
  Decoder dec(body);
  PingMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.token));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  return msg;
}

// --- RaiseEventMsg -----------------------------------------------------------

void RaiseEventMsg::Encode(Encoder* enc) const {
  enc->PutU64(oid);
  enc->PutString(class_name);
  enc->PutString(method);
  enc->PutU8(static_cast<uint8_t>(modifier));
  enc->PutValueList(params);
}

bool PeekRaiseRouting(const std::string& body, uint64_t* oid,
                      std::string* class_name) {
  Decoder dec(body);
  return dec.GetU64(oid).ok() && dec.GetString(class_name).ok();
}

Result<RaiseEventMsg> RaiseEventMsg::Decode(const std::string& body) {
  Decoder dec(body);
  RaiseEventMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.class_name));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.method));
  SENTINEL_RETURN_IF_ERROR(DecodeModifier(&dec, &msg.modifier));
  SENTINEL_RETURN_IF_ERROR(dec.GetValueList(&msg.params));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.class_name.empty() || msg.method.empty()) {
    return Status::InvalidArgument("RaiseEvent needs class and method");
  }
  return msg;
}

// --- CreateRuleMsg -----------------------------------------------------------

void CreateRuleMsg::Encode(Encoder* enc) const {
  enc->PutString(name);
  enc->PutString(event_signature);
  enc->PutString(condition_name);
  enc->PutString(action_name);
  enc->PutU8(coupling);
  enc->PutI64(priority);
  enc->PutBool(enabled);
}

Result<CreateRuleMsg> CreateRuleMsg::Decode(const std::string& body) {
  Decoder dec(body);
  CreateRuleMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.name));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.event_signature));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.condition_name));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.action_name));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.coupling));
  SENTINEL_RETURN_IF_ERROR(dec.GetI64(&msg.priority));
  SENTINEL_RETURN_IF_ERROR(dec.GetBool(&msg.enabled));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.name.empty()) {
    return Status::InvalidArgument("CreateRule needs a rule name");
  }
  if (msg.coupling > 2) {
    return Status::InvalidArgument("bad coupling mode " +
                                   std::to_string(msg.coupling));
  }
  return msg;
}

// --- RuleNameMsg -------------------------------------------------------------

void RuleNameMsg::Encode(Encoder* enc) const { enc->PutString(name); }

Result<RuleNameMsg> RuleNameMsg::Decode(const std::string& body) {
  Decoder dec(body);
  RuleNameMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.name));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.name.empty()) {
    return Status::InvalidArgument("rule name must not be empty");
  }
  return msg;
}

// --- SubscribeMsg ------------------------------------------------------------

void SubscribeMsg::Encode(Encoder* enc) const { enc->PutString(key); }

Result<SubscribeMsg> SubscribeMsg::Decode(const std::string& body) {
  Decoder dec(body);
  SubscribeMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.key));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.key.empty()) {
    return Status::InvalidArgument("subscription key must not be empty");
  }
  return msg;
}

// --- FetchMsg ----------------------------------------------------------------

void FetchMsg::Encode(Encoder* enc) const {
  enc->PutU32(max);
  enc->PutU32(wait_ms);
}

Result<FetchMsg> FetchMsg::Decode(const std::string& body) {
  Decoder dec(body);
  FetchMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.max));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.wait_ms));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.max == 0) {
    return Status::InvalidArgument("fetch max must be positive");
  }
  return msg;
}

// --- HistoryScanMsg ----------------------------------------------------------

void HistoryScanMsg::Encode(Encoder* enc) const {
  enc->PutU64(min_seq);
  enc->PutU64(max_seq);
  enc->PutI64(min_micros);
  enc->PutI64(max_micros);
  enc->PutU64(oid);
  enc->PutU32(limit);
  enc->PutU64(after_seq);
  enc->PutU32(after_shard);
}

Result<HistoryScanMsg> HistoryScanMsg::Decode(const std::string& body) {
  Decoder dec(body);
  HistoryScanMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.min_seq));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.max_seq));
  SENTINEL_RETURN_IF_ERROR(dec.GetI64(&msg.min_micros));
  SENTINEL_RETURN_IF_ERROR(dec.GetI64(&msg.max_micros));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.limit));
  if (!dec.AtEnd()) {  // Cursor absent from pre-cursor peers.
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.after_seq));
    SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.after_shard));
  }
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.min_seq > msg.max_seq) {
    return Status::InvalidArgument("history scan: min_seq > max_seq");
  }
  if (msg.max_micros != 0 && msg.min_micros > msg.max_micros) {
    return Status::InvalidArgument("history scan: min_micros > max_micros");
  }
  return msg;
}

// --- HelloMsg ----------------------------------------------------------------

void HelloMsg::Encode(Encoder* enc) const {
  enc->PutU32(magic);
  enc->PutU8(min_version);
  enc->PutU8(max_version);
  enc->PutString(tenant);
}

Result<HelloMsg> HelloMsg::Decode(const std::string& body) {
  Decoder dec(body);
  HelloMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.magic));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.min_version));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.max_version));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.tenant));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.magic != kMagic) {
    return Status::InvalidArgument("bad hello magic");
  }
  if (msg.min_version == 0 || msg.min_version > msg.max_version) {
    return Status::InvalidArgument("bad hello version range [" +
                                   std::to_string(msg.min_version) + ", " +
                                   std::to_string(msg.max_version) + "]");
  }
  return msg;
}

// --- HelloReplyMsg -----------------------------------------------------------

void HelloReplyMsg::Encode(Encoder* enc) const {
  enc->PutU8(version);
  enc->PutU32(max_frame_body);
  enc->PutString(server);
}

Result<HelloReplyMsg> HelloReplyMsg::Decode(const std::string& body) {
  Decoder dec(body);
  HelloReplyMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.version));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.max_frame_body));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.server));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.version == 0) {
    return Status::InvalidArgument("hello reply names version 0");
  }
  return msg;
}

// --- BatchStatusReplyMsg -----------------------------------------------------

size_t BatchStatusReplyMsg::TotalAcks() const {
  size_t total = 0;
  for (const Run& run : runs) total += run.count;
  return total;
}

void BatchStatusReplyMsg::Encode(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(runs.size()));
  for (const Run& run : runs) {
    enc->PutU32(run.count);
    enc->PutU8(run.code);
    enc->PutString(run.message);
    enc->PutU64(run.payload);
  }
}

Result<BatchStatusReplyMsg> BatchStatusReplyMsg::Decode(
    const std::string& body) {
  Decoder dec(body);
  uint32_t count = 0;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&count));
  BatchStatusReplyMsg msg;
  msg.runs.reserve(std::min<size_t>(count, dec.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    Run run;
    SENTINEL_RETURN_IF_ERROR(dec.GetU32(&run.count));
    SENTINEL_RETURN_IF_ERROR(dec.GetU8(&run.code));
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&run.message));
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&run.payload));
    if (run.count == 0) {
      return Status::InvalidArgument("empty batch-status run");
    }
    if (run.code > static_cast<uint8_t>(Status::Code::kResourceExhausted)) {
      return Status::InvalidArgument("bad status code " +
                                     std::to_string(run.code));
    }
    msg.runs.push_back(std::move(run));
  }
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.runs.empty()) {
    return Status::InvalidArgument("batch status reply carries no runs");
  }
  return msg;
}

// --- StatsRequestMsg ---------------------------------------------------------

void StatsRequestMsg::Encode(Encoder* enc) const { enc->PutU32(sections); }

Result<StatsRequestMsg> StatsRequestMsg::Decode(const std::string& body) {
  Decoder dec(body);
  StatsRequestMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.sections));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.sections == 0) {
    return Status::InvalidArgument("stats request selects no sections");
  }
  if ((msg.sections & ~(kDatabase | kGateway)) != 0) {
    return Status::InvalidArgument("unknown stats section bits " +
                                   std::to_string(msg.sections));
  }
  return msg;
}

// --- StatusReplyMsg ----------------------------------------------------------

Status StatusReplyMsg::ToStatus() const {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kAborted:
      return Status::Aborted(message);
    case Status::Code::kBusy:
      return Status::Busy(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case Status::Code::kInternal:
      return Status::Internal(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(message);
  }
  return Status::Internal("unknown status code " + std::to_string(code));
}

StatusReplyMsg StatusReplyMsg::FromStatus(const Status& s, uint64_t payload) {
  StatusReplyMsg msg;
  msg.code = static_cast<uint8_t>(s.code());
  msg.message = s.message();
  msg.payload = payload;
  return msg;
}

void ReplSubscribeMsg::Encode(Encoder* enc) const {
  enc->PutU64(epoch);
  enc->PutU8(mode);
  enc->PutU64(after_oid);
  enc->PutU64(next_lsn);
  enc->PutU64(after_ordinal);
  enc->PutU32(max_items);
}

Result<ReplSubscribeMsg> ReplSubscribeMsg::Decode(const std::string& body) {
  Decoder dec(body);
  ReplSubscribeMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.epoch));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.mode));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.after_oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.next_lsn));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.after_ordinal));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.max_items));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.mode > ReplSubscribeMsg::kTail) {
    return Status::InvalidArgument("repl subscribe: unknown mode");
  }
  return msg;
}

void ReplBatchMsg::Encode(Encoder* enc) const {
  enc->PutU64(epoch);
  enc->PutU8(primary);
  enc->PutU8(mode);
  enc->PutU64(wal_base_lsn);
  enc->PutU64(wal_end_lsn);
  enc->PutU64(mirror_total);
  enc->PutU32(static_cast<uint32_t>(objects.size()));
  for (const ObjectImage& obj : objects) {
    enc->PutU64(obj.oid);
    enc->PutString(obj.class_name);
    enc->PutString(obj.state);
  }
  enc->PutU64(next_oid);
  enc->PutU8(snapshot_done);
  enc->PutU64(snapshot_lsn);
  enc->PutU32(static_cast<uint32_t>(wal.size()));
  for (const WalEntry& rec : wal) {
    enc->PutU8(rec.type);
    enc->PutU64(rec.txn);
    enc->PutU64(rec.oid);
    enc->PutString(rec.payload);
  }
  enc->PutU64(next_lsn);
  enc->PutU8(wal_reset);
  enc->PutU32(static_cast<uint32_t>(occ_records.size()));
  for (const std::string& rec : occ_records) enc->PutString(rec);
  enc->PutU64(next_ordinal);
}

Result<ReplBatchMsg> ReplBatchMsg::Decode(const std::string& body) {
  Decoder dec(body);
  ReplBatchMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.epoch));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.primary));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.mode));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.wal_base_lsn));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.wal_end_lsn));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.mirror_total));
  uint32_t n = 0;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&n));
  msg.objects.resize(n);
  for (ObjectImage& obj : msg.objects) {
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&obj.oid));
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&obj.class_name));
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&obj.state));
  }
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.next_oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.snapshot_done));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.snapshot_lsn));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&n));
  msg.wal.resize(n);
  for (WalEntry& rec : msg.wal) {
    SENTINEL_RETURN_IF_ERROR(dec.GetU8(&rec.type));
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&rec.txn));
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&rec.oid));
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&rec.payload));
  }
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.next_lsn));
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.wal_reset));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&n));
  msg.occ_records.resize(n);
  for (std::string& rec : msg.occ_records) {
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&rec));
  }
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.next_ordinal));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  return msg;
}

void StatusReplyMsg::Encode(Encoder* enc) const {
  enc->PutU8(code);
  enc->PutString(message);
  enc->PutU64(payload);
}

Result<StatusReplyMsg> StatusReplyMsg::Decode(const std::string& body) {
  Decoder dec(body);
  StatusReplyMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU8(&msg.code));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.message));
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.payload));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.code > static_cast<uint8_t>(Status::Code::kResourceExhausted)) {
    return Status::InvalidArgument("bad status code " +
                                   std::to_string(msg.code));
  }
  return msg;
}

// --- Notification / NotificationBatchMsg ------------------------------------

void Notification::Encode(Encoder* enc) const {
  enc->PutString(key);
  enc->PutU64(oid);
  enc->PutString(class_name);
  enc->PutString(method);
  enc->PutU8(static_cast<uint8_t>(modifier));
  enc->PutValueList(params);
  enc->PutI64(timestamp.micros);
  enc->PutU64(timestamp.seq);
}

Status Notification::DecodeInto(Decoder* dec, Notification* out) {
  SENTINEL_RETURN_IF_ERROR(dec->GetString(&out->key));
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&out->oid));
  SENTINEL_RETURN_IF_ERROR(dec->GetString(&out->class_name));
  SENTINEL_RETURN_IF_ERROR(dec->GetString(&out->method));
  SENTINEL_RETURN_IF_ERROR(DecodeModifier(dec, &out->modifier));
  SENTINEL_RETURN_IF_ERROR(dec->GetValueList(&out->params));
  SENTINEL_RETURN_IF_ERROR(dec->GetI64(&out->timestamp.micros));
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&out->timestamp.seq));
  return Status::OK();
}

void NotificationBatchMsg::Encode(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(items.size()));
  for (const Notification& n : items) n.Encode(enc);
}

Result<NotificationBatchMsg> NotificationBatchMsg::Decode(
    const std::string& body) {
  Decoder dec(body);
  uint32_t count = 0;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&count));
  NotificationBatchMsg msg;
  // Reserve conservatively: `count` is attacker-controlled, the remaining
  // bytes are not, and each notification needs well over one byte.
  msg.items.reserve(std::min<size_t>(count, dec.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    Notification n;
    SENTINEL_RETURN_IF_ERROR(Notification::DecodeInto(&dec, &n));
    msg.items.push_back(std::move(n));
  }
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  return msg;
}

// --- HistoryBatchMsg ---------------------------------------------------------

void HistoryBatchMsg::Encode(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(items.size()));
  for (const Notification& n : items) n.Encode(enc);
  enc->PutBool(complete);
  enc->PutU64(next_seq);
  enc->PutU32(next_shard);
}

Result<HistoryBatchMsg> HistoryBatchMsg::Decode(const std::string& body) {
  Decoder dec(body);
  uint32_t count = 0;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&count));
  HistoryBatchMsg msg;
  msg.items.reserve(std::min<size_t>(count, dec.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    Notification n;
    SENTINEL_RETURN_IF_ERROR(Notification::DecodeInto(&dec, &n));
    msg.items.push_back(std::move(n));
  }
  SENTINEL_RETURN_IF_ERROR(dec.GetBool(&msg.complete));
  if (!dec.AtEnd()) {  // Cursor absent from pre-cursor peers.
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.next_seq));
    SENTINEL_RETURN_IF_ERROR(dec.GetU32(&msg.next_shard));
  }
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  return msg;
}

// --- StatsReplyMsg -----------------------------------------------------------

void StatsReplyMsg::Encode(Encoder* enc) const { enc->PutString(json); }

Result<StatsReplyMsg> StatsReplyMsg::Decode(const std::string& body) {
  Decoder dec(body);
  StatsReplyMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&msg.json));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  if (msg.json.empty()) {
    return Status::InvalidArgument("stats reply carries no document");
  }
  return msg;
}

// --- PongMsg -----------------------------------------------------------------

void PongMsg::Encode(Encoder* enc) const { enc->PutU64(token); }

Result<PongMsg> PongMsg::Decode(const std::string& body) {
  Decoder dec(body);
  PongMsg msg;
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&msg.token));
  SENTINEL_RETURN_IF_ERROR(ExpectEnd(dec));
  return msg;
}

}  // namespace net
}  // namespace sentinel
