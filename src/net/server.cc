// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "shmtp/host.h"

namespace sentinel {
namespace net {

const char kNotifySubscribersAction[] = "gateway.notify";

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr auto kMutatorIdleWait = std::chrono::milliseconds(50);
constexpr int kEpollBatch = 128;
/// Chunks staged per writev call. Well under IOV_MAX (1024) and, at 64KB
/// chunks, far more bytes than one call ever writes anyway.
constexpr size_t kMaxIov = 64;

/// epoll_event.data.u64 tags for the two non-session fds. Session ids count
/// up from 1, so the top of the space is free.
constexpr uint64_t kListenTag = ~0ull;
constexpr uint64_t kWakeTag = ~0ull - 1;

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Notification FromOccurrence(const std::string& key,
                            const EventOccurrence& occ) {
  Notification n;
  n.key = key;
  n.oid = occ.oid;
  n.class_name = occ.class_name;
  n.method = occ.method;
  n.modifier = occ.modifier;
  n.params = occ.params;
  n.timestamp = occ.timestamp;
  return n;
}

/// Credits back the admission charge of one queued raise when the worker is
/// done with it — whatever "done" meant (acked, decode error, or the session
/// died first). Pairing the decrement with the exact session/tenant that was
/// charged keeps the quota books balanced across Hello-time tenant changes
/// and disconnect-while-queued.
struct ChargeRelease {
  const IngressItem& item;
  ~ChargeRelease() {
    if (item.charged_tenant == nullptr) return;
    item.session->inflight_raises.fetch_sub(1, std::memory_order_relaxed);
    item.charged_tenant->inflight_raises.fetch_sub(1,
                                                   std::memory_order_relaxed);
  }
};

}  // namespace

GatewayServer::GatewayServer(Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      hub_(std::make_shared<NotificationHub>()) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  notify_limits_.max_count = options_.max_pending_notifications;
  notify_limits_.max_bytes = options_.max_pending_notify_bytes;
  const size_t nshards = db_->raise_shards();
  queues_.reserve(nshards);
  exec_mu_.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    queues_.push_back(
        std::make_unique<IngressQueue>(options_.ingress_capacity));
    exec_mu_.push_back(std::make_unique<std::mutex>());
  }
  relays_.resize(nshards);
}

GatewayServer::~GatewayServer() { Stop(); }

Status GatewayServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("gateway already running");
  }

  // Gateway-side structures report into the database's registry so one
  // StatsSnapshot covers the whole process. Shard 0 keeps the historical
  // unsuffixed metric names; extra shards get ".s<i>".
  for (size_t i = 0; i < queues_.size(); ++i) {
    queues_[i]->SetMetrics(db_->metrics(),
                           i == 0 ? "" : ".s" + std::to_string(i));
  }
  hub_->SetMetrics(db_->metrics());

  // The rule action broadcasting to "rule:<name>" subscribers. It captures
  // the hub (shared), not the server: a rule firing after Stop() lands in
  // an empty hub instead of freed memory. AlreadyExists just means another
  // (earlier) gateway on this database registered it.
  std::shared_ptr<NotificationHub> hub = hub_;
  NotifyLimits limits = notify_limits_;
  Status s = db_->functions()->RegisterAction(
      kNotifySubscribersAction, [hub, limits](RuleContext& ctx) {
        if (ctx.rule == nullptr || ctx.detection == nullptr) {
          return Status::OK();
        }
        hub->Broadcast("rule:" + ctx.rule->name(),
                       FromOccurrence("rule:" + ctx.rule->name(),
                                      ctx.detection->last()),
                       limits);
        return Status::OK();
      });
  if (!s.ok() && !s.IsAlreadyExists()) return s;

  // Occurrence fan-out: every raise reaching PostRaise is offered to
  // sessions subscribed to its key.
  observer_ = db_->AddOccurrenceObserver(
      [hub, limits](const EventOccurrence& occ) {
        hub->Broadcast(occ.Key(), FromOccurrence(occ.Key(), occ), limits);
      });

  // Sessions that never send Hello bill the default tenant.
  TenantFor("");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status err = Status::IOError("bind " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    Stop();
    return err;
  }
  if (::listen(listen_fd_, 512) < 0) {
    Status err =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    Stop();
    return err;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  {
    Status err = SetNonBlocking(listen_fd_);
    if (!err.ok()) {
      Stop();
      return err;
    }
  }

  io_shards_.clear();
  for (size_t i = 0; i < options_.io_threads; ++i) {
    auto io = std::make_unique<IoShard>();
    io->index = i;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (io->epoll_fd < 0) {
      Stop();
      return Status::IOError("epoll_create1: " +
                             std::string(std::strerror(errno)));
    }
    Status err = io->wake.Open();
    if (!err.ok()) {
      ::close(io->epoll_fd);
      Stop();
      return err;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->wake.read_fd(), &ev);
    io->staging.resize(queues_.size());
    io_shards_.push_back(std::move(io));
  }
  // Only shard 0 accepts; it hands fds whose hash says otherwise to their
  // owning shard's incoming list.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    ::epoll_ctl(io_shards_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < io_shards_.size(); ++i) {
    io_shards_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  workers_.reserve(queues_.size());
  for (size_t shard = 0; shard < queues_.size(); ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
  if (!options_.shm_segment.empty()) {
    shmtp::ShmHost::Options shm_opts;
    shm_opts.segment = options_.shm_segment;
    shm_opts.rings = options_.shm_rings;
    shm_opts.job_ring_bytes = options_.shm_ring_bytes;
    shm_opts.cpl_ring_bytes = options_.shm_completion_bytes;
    shm_opts.max_frame_body = options_.max_frame_body;
    shm_opts.max_inflight_raises = options_.max_inflight_raises;
    shm_opts.tenant_max_inflight_raises =
        options_.tenant_max_inflight_raises;
    shmtp::ShmHost::Env shm_env;
    for (auto& queue : queues_) shm_env.queues.push_back(queue.get());
    shm_env.default_tenant = TenantFor("");
    shm_env.alloc_session_id = [this] {
      return next_session_id_.fetch_add(1, std::memory_order_relaxed);
    };
    shm_host_ =
        std::make_unique<shmtp::ShmHost>(std::move(shm_opts),
                                         std::move(shm_env));
    Status err = shm_host_->Start();
    if (!err.ok()) {
      shm_host_.reset();
      Stop();
      return err;
    }
  }
  SENTINEL_INFO << "gateway listening on " << options_.host << ":" << port_
                << " (" << io_shards_.size() << " io thread"
                << (io_shards_.size() == 1 ? "" : "s") << ", "
                << queues_.size() << " worker shard"
                << (queues_.size() == 1 ? "" : "s") << ")";
  return Status::OK();
}

void GatewayServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    // Shm intake first: once it stops, no new frames enter the queues
    // from local producers, and the segment flips to kHostShutdown so
    // handles stop pushing. The host object itself stays alive until the
    // workers are joined — their final ack flushes write into its
    // completion regions.
    if (shm_host_ != nullptr) shm_host_->StopIntake();
    // Workers next: they drain what the IO shards already admitted, and
    // their final replies still have live IO shards to flush them (pure
    // shutdown hygiene — clients of a stopping server get best-effort
    // delivery, not a guarantee).
    for (auto& queue : queues_) queue->Shutdown();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    shm_host_.reset();
    for (auto& io : io_shards_) io->wake.Wake();
    for (auto& io : io_shards_) {
      if (io->thread.joinable()) io->thread.join();
    }
    // Triggers still in flight between shards when the workers exited are
    // run to a fixpoint here, on the single remaining thread.
    db_->DrainAllForwardedShards();
  }
  hub_->Clear();
  observer_.reset();
  // Relay objects were registered live with the database; detach them so
  // the database never dereferences freed objects after we are gone.
  for (auto& shard_relays : relays_) {
    for (auto& [key, relay] : shard_relays) {
      db_->UnregisterLiveObject(relay.get()).ok();
    }
    shard_relays.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& io : io_shards_) {
    // Fds another shard accepted on our behalf that we never adopted.
    for (int fd : io->incoming_fds) ::close(fd);
    io->incoming_fds.clear();
    if (io->epoll_fd >= 0) ::close(io->epoll_fd);
    io->epoll_fd = -1;
    io->wake.Close();
  }
  io_shards_.clear();
}

GatewayStats GatewayServer::stats() const {
  GatewayStats s;
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.requests_processed = requests_processed_.load(std::memory_order_relaxed);
  s.backpressure_rejections =
      backpressure_rejections_.load(std::memory_order_relaxed);
  s.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.notifications_enqueued = hub_->notifications_enqueued();
  s.notifications_dropped = hub_->notifications_dropped();
  s.sessions_accepted = sessions_accepted_.load(std::memory_order_relaxed);
  s.batched_acks = batched_acks_.load(std::memory_order_relaxed);
  s.inline_raises = inline_raises_.load(std::memory_order_relaxed);
  if (shm_host_ != nullptr) {
    const shmtp::ShmHost::Stats& shm = shm_host_->stats();
    s.shm_frames = shm.frames.load(std::memory_order_relaxed);
    s.shm_batches = shm.batches.load(std::memory_order_relaxed);
    s.shm_parks = shm.parks.load(std::memory_order_relaxed);
    s.shm_wakeups = shm.wakeups.load(std::memory_order_relaxed);
    s.shm_attaches = shm.attaches.load(std::memory_order_relaxed);
    s.shm_reclaims = shm.reclaims.load(std::memory_order_relaxed);
  }
  return s;
}

TenantState* GatewayServer::TenantFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    // TenantState is never freed (sessions hold raw pointers into it), so
    // the map must not grow at the whim of whoever connects: past the cap
    // on *named* tenants, unknown names share the default domain instead
    // of allocating. The default tenant ("", created at Start) is exempt.
    if (!name.empty() && options_.max_tenants != 0 &&
        tenants_.size() > options_.max_tenants) {
      return tenants_.find("")->second.get();
    }
    it = tenants_.emplace(name, std::make_unique<TenantState>(name)).first;
  }
  return it->second.get();
}

size_t GatewayServer::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

// --- IO shards ---------------------------------------------------------------

void GatewayServer::IoLoop(size_t io_idx) {
  IoShard* io = io_shards_[io_idx].get();
  epoll_event events[kEpollBatch];
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(io->epoll_fd, events, kEpollBatch,
                         /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      SENTINEL_WARN << "gateway epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        io->wake.Drain();
        continue;
      }
      if (tag == kListenTag) {
        AcceptPending(io);
        continue;
      }
      auto it = io->sessions.find(tag);
      if (it == io->sessions.end()) continue;  // Closed earlier this batch.
      std::shared_ptr<Session> session = it->second;
      bool alive = (events[i].events & (EPOLLERR | EPOLLHUP)) == 0;
      // EPOLLRDHUP still drains first: the peer may have sent a burst and
      // half-closed; recv() reports the final 0 once the bytes are out.
      if (alive && (events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        alive = DrainSocket(io, session);
      }
      // Flush opportunistically — replies the workers queued since the
      // last wake, plus whatever DrainSocket rejected inline.
      if (alive) alive = FlushSocket(session.get());
      if (alive && session->drop_after_flush &&
          OutboxDrained(session.get())) {
        alive = false;
      }
      if (!alive) CloseSession(io, tag);
    }
    AdoptIncoming(io);
    DrainFlushQueue(io);
  }

  // Teardown on the owning thread, which holds the fds. Stop() flags
  // running_ before it joins the workers, so a worker may still be inside
  // WorkerFlush writing under wr_mu when we get here — close under the
  // same lock (exactly as CloseSession does) so the flush never races the
  // close or writes to a recycled descriptor.
  for (auto& [id, session] : io->sessions) {
    {
      std::lock_guard<std::mutex> lock(session->wr_mu);
      if (session->fd >= 0) ::close(session->fd);
      session->fd = -1;
    }
    session->closed.store(true, std::memory_order_release);
    hub_->Remove(id);
  }
  io->sessions.clear();
}

void GatewayServer::AcceptPending(IoShard* io) {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SENTINEL_WARN << "gateway accept: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    size_t target = static_cast<size_t>(fd) % io_shards_.size();
    if (target == io->index) {
      RegisterSession(io, fd);
    } else {
      IoShard* dest = io_shards_[target].get();
      {
        std::lock_guard<std::mutex> lock(dest->incoming_mu);
        dest->incoming_fds.push_back(fd);
      }
      dest->wake.Wake();
    }
  }
}

void GatewayServer::AdoptIncoming(IoShard* io) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(io->incoming_mu);
    fds.swap(io->incoming_fds);
  }
  for (int fd : fds) RegisterSession(io, fd);
}

void GatewayServer::RegisterSession(IoShard* io, int fd) {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_shared<Session>(id, fd);
  session->io_shard = io->index;
  session->tenant.store(TenantFor(""), std::memory_order_release);
  // The notifier runs on whichever thread queued the reply; flush_queued
  // collapses a burst of replies into one flush-list entry + wake.
  session->SetFlushNotifier([this, io](Session* s) {
    if (s->flush_queued.exchange(true, std::memory_order_acq_rel)) return;
    {
      std::lock_guard<std::mutex> lock(io->flush_mu);
      io->flush_ids.push_back(s->id());
    }
    io->wake.Wake();
  });

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = id;
  if (::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    SENTINEL_WARN << "gateway epoll_ctl(add): " << std::strerror(errno);
    ::close(fd);
    return;
  }
  io->sessions[id] = session;
  hub_->Add(std::move(session));
  sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
}

void GatewayServer::CloseSession(IoShard* io, uint64_t id) {
  auto it = io->sessions.find(id);
  if (it == io->sessions.end()) return;
  {
    // Close under the writer lock so a worker's direct flush never writes
    // to a recycled descriptor.
    std::lock_guard<std::mutex> lock(it->second->wr_mu);
    if (it->second->fd >= 0) ::close(it->second->fd);
    it->second->fd = -1;
  }
  it->second->closed.store(true, std::memory_order_release);
  io->sessions.erase(it);
  hub_->Remove(id);
}

void GatewayServer::UnchargeRejected(const std::vector<IngressItem>& items) {
  for (const IngressItem& item : items) {
    if (item.charged_tenant == nullptr) continue;
    item.session->inflight_raises.fetch_sub(1, std::memory_order_relaxed);
    item.charged_tenant->inflight_raises.fetch_sub(1,
                                                   std::memory_order_relaxed);
  }
}

bool GatewayServer::DrainSocket(IoShard* io,
                                const std::shared_ptr<Session>& session) {
  // Edge-triggered: read until the receive queue is provably empty. A
  // full chunk may leave more behind, so only EAGAIN ends the loop then;
  // a SHORT read on a stream socket does mean the queue emptied (epoll(7)
  // documents this), which skips the guaranteed-EAGAIN syscall on the
  // sync-RPC hot path.
  char chunk[kReadChunk];
  while (true) {
    ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // Peer closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    session->inbuf.append(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }

  // Split complete frames off the accumulation buffer, staging each on its
  // target shard's batch; one TryPushBatch per touched queue amortizes the
  // queue mutex over the whole read burst.
  size_t offset = 0;
  bool protocol_error = false;
  const uint32_t session_quota = options_.max_inflight_raises;
  const uint32_t tenant_quota = options_.tenant_max_inflight_raises;
  while (true) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    std::string_view view(session->inbuf.data() + offset,
                          session->inbuf.size() - offset);
    DecodeProgress progress = TryDecodeFrame(view, options_.max_frame_body,
                                             &frame, &consumed, &error);
    if (progress == DecodeProgress::kNeedMore) break;
    if (progress == DecodeProgress::kError) {
      // Malformed stream: report once, flush, drop the connection — there
      // is no way to resynchronize a corrupt length-prefixed stream.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(error));
      session->drop_after_flush = true;
      session->inbuf.clear();
      protocol_error = true;
      break;
    }
    offset += consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);

    Status admit = Status::OK();
    if (FailPoints::AnyActive()) {
      admit = FailPoints::Instance().Check("gateway.ingress");
    }
    if (!admit.ok()) {
      backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(admit));
      continue;
    }

    IngressItem item;
    item.session = session;
    if (frame.type == FrameType::kRaiseEvent) {
      // Admission quotas, right here at the socket: a producer over its
      // in-flight window gets an immediate ResourceExhausted instead of a
      // slot in the ingress queue. Counters are eventually exact — the
      // worker credits them back as it acks — and the check-then-add race
      // between IO shards can only overshoot by one frame per shard.
      TenantState* tenant = session->tenant.load(std::memory_order_acquire);
      const char* which = nullptr;
      if (session_quota != 0 &&
          session->inflight_raises.load(std::memory_order_relaxed) >=
              session_quota) {
        which = "session";
      } else if (tenant_quota != 0 &&
                 tenant->inflight_raises.load(std::memory_order_relaxed) >=
                     tenant_quota) {
        which = "tenant";
      }
      if (which != nullptr) {
        quota_rejections_.fetch_add(1, std::memory_order_relaxed);
        backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
        session->Reply(
            FrameType::kStatusReply,
            StatusReplyMsg::FromStatus(Status::ResourceExhausted(
                std::string(which) + " in-flight raise quota exceeded")));
        continue;
      }
      session->inflight_raises.fetch_add(1, std::memory_order_relaxed);
      tenant->inflight_raises.fetch_add(1, std::memory_order_relaxed);
      item.charged_tenant = tenant;
    }
    size_t target = RouteFrame(session.get(), frame);
    item.frame = std::move(frame);
    io->staging[target].push_back(std::move(item));
  }
  if (!protocol_error && offset > 0) session->inbuf.erase(0, offset);

  // Sync fast path: a drain that produced exactly one raise — the shape a
  // synchronous RPC client generates — executes it right here on the IO
  // thread when the target shard is idle, cutting the round trip from
  // three context switches (client → IO → worker → client) to two. The
  // shard's exec lock guarantees the worker is not mid-drain, and because
  // the worker only pops its queue while holding that lock (WorkerLoop),
  // an empty queue observed under it proves every previously admitted
  // frame has already been processed *and acked* — nothing is overtaken.
  // Bursts keep the queue handoff: the worker's drain loop is where ack
  // coalescing pays for itself.
  {
    size_t staged_total = 0;
    size_t target = 0;
    for (size_t shard = 0; shard < io->staging.size(); ++shard) {
      staged_total += io->staging[shard].size();
      if (!io->staging[shard].empty()) target = shard;
    }
    if (staged_total == 1 &&
        io->staging[target][0].frame.type == FrameType::kRaiseEvent &&
        queues_[target]->size() == 0) {
      std::unique_lock<std::mutex> exec(*exec_mu_[target],
                                        std::try_to_lock);
      if (exec.owns_lock() && queues_[target]->size() == 0) {
        Database::BindRaiseShard(target);
        AckBatcher acks(this);
        ProcessItem(target, io->staging[target][0], &acks);
        acks.FlushAll();
        io->staging[target].clear();
        inline_raises_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  for (size_t shard = 0; shard < io->staging.size(); ++shard) {
    std::vector<IngressItem>& staged = io->staging[shard];
    if (staged.empty()) continue;
    queues_[shard]->TryPushBatch(&staged);
    if (!staged.empty()) {
      // Backpressure (or shutdown): answer immediately from the IO thread
      // rather than buffering without bound.
      Status reject = queues_[shard]->shutdown()
                          ? Status::FailedPrecondition(
                                "ingress queue is shut down")
                          : Status::ResourceExhausted(
                                "ingress queue full (" +
                                std::to_string(queues_[shard]->capacity()) +
                                ")");
      UnchargeRejected(staged);
      for (size_t i = 0; i < staged.size(); ++i) {
        backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(reject));
      }
      staged.clear();
    }
  }
  return true;
}

size_t GatewayServer::RouteFrame(const Session* session,
                                 const Frame& frame) const {
  const size_t nshards = queues_.size();
  if (nshards == 1) return 0;
  if (frame.type == FrameType::kRaiseEvent) {
    uint64_t oid = 0;
    std::string class_name;
    if (PeekRaiseRouting(frame.body, &oid, &class_name)) {
      return ShardIndexForRoute(class_name, static_cast<Oid>(oid), nshards);
    }
    // Undecodable routing prefix: any worker will produce the same decode
    // error, so session affinity is fine.
  }
  // Non-raise requests (and notification state in particular) stay on one
  // worker per session.
  return session->id() % nshards;
}

bool GatewayServer::FlushSocket(Session* session) {
  std::lock_guard<std::mutex> lock(session->wr_mu);
  return FlushSocketLocked(session);
}

void GatewayServer::WorkerFlush(const std::shared_ptr<Session>& session) {
  {
    std::unique_lock<std::mutex> lock(session->wr_mu, std::try_to_lock);
    if (lock.owns_lock() && session->fd >= 0 &&
        !session->closed.load(std::memory_order_acquire)) {
      // Write errors are left for the IO shard: a dead peer raises an
      // EPOLLERR/EPOLLHUP edge there, which reaps the session.
      FlushSocketLocked(session.get());
      if (session->wq.empty() && !session->HasOutput()) return;
    }
  }
  // Contention, residue, or a closed socket: hand the rest to the shard.
  session->NotifyFlush();
}

bool GatewayServer::OutboxDrained(Session* session) {
  std::lock_guard<std::mutex> lock(session->wr_mu);
  return session->wq.empty() && !session->HasOutput();
}

bool GatewayServer::FlushSocketLocked(Session* session) {
  if (session->fd < 0) return false;
  while (true) {
    session->TakeOutput(&session->wq);
    if (session->wq.empty()) return true;

    // One writev per drain pass: every queued chunk (up to kMaxIov) goes
    // out in a single syscall instead of a send() per reply.
    iovec iov[kMaxIov];
    size_t niov = 0;
    size_t skip = session->wq_offset;
    size_t staged_bytes = 0;
    for (const std::string& chunk : session->wq) {
      if (niov == kMaxIov) break;
      iov[niov].iov_base = const_cast<char*>(chunk.data()) + skip;
      iov[niov].iov_len = chunk.size() - skip;
      staged_bytes += iov[niov].iov_len;
      skip = 0;
      ++niov;
    }
    ssize_t n = ::writev(session->fd, iov, static_cast<int>(niov));
    if (n < 0) {
      // EAGAIN: kernel buffer full. The socket stays registered for
      // EPOLLOUT (edge-triggered), so the next writability edge resumes
      // from wq/wq_offset.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    size_t written = static_cast<size_t>(n);
    while (written > 0) {
      size_t avail = session->wq.front().size() - session->wq_offset;
      if (written >= avail) {
        written -= avail;
        session->wq.pop_front();
        session->wq_offset = 0;
      } else {
        session->wq_offset += written;
        written = 0;
      }
    }
    if (static_cast<size_t>(n) < staged_bytes) {
      // Partial write: the kernel buffer just filled; wait for EPOLLOUT
      // instead of burning another syscall on a guaranteed EAGAIN.
      return true;
    }
  }
}

void GatewayServer::DrainFlushQueue(IoShard* io) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(io->flush_mu);
    ids.swap(io->flush_ids);
  }
  for (uint64_t id : ids) {
    auto it = io->sessions.find(id);
    if (it == io->sessions.end()) continue;
    std::shared_ptr<Session> session = it->second;
    // Re-arm before flushing: a reply queued mid-flush re-queues the
    // session rather than being stranded.
    session->flush_queued.store(false, std::memory_order_release);
    bool alive = FlushSocket(session.get());
    if (alive && session->drop_after_flush &&
        OutboxDrained(session.get())) {
      alive = false;
    }
    if (!alive) CloseSession(io, id);
  }
}

// --- Worker threads ----------------------------------------------------------

void GatewayServer::WorkerLoop(size_t shard) {
  // Pin this thread to its raise shard: every facade call below — raises,
  // transactions, forwarded-trigger rounds — now uses shard-local state.
  Database::BindRaiseShard(shard);
  IngressQueue* queue = queues_[shard].get();
  const bool sharded = queues_.size() > 1;
  AckBatcher acks(this);
  std::vector<IngressItem> batch;
  while (true) {
    batch.clear();
    auto now = std::chrono::steady_clock::now();
    // Parked long-polls are expired by shard 0 only (one scan, not N);
    // other shards just use the idle wait.
    auto deadline = shard == 0 ? hub_->NextDeadline(now + kMutatorIdleWait)
                               : now + kMutatorIdleWait;
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (wait < std::chrono::milliseconds(1)) {
      wait = std::chrono::milliseconds(1);
    }
    // Wait for work *outside* the exec lock, then pop *under* it: an item
    // must never leave the queue before this thread holds exec_mu_. The IO
    // threads' inline fast path infers "no admitted frame is ahead of mine"
    // from an empty queue observed under that lock, which only holds if
    // every popped item is processed and acked before the lock is
    // released — popping first would let an inline raise overtake a
    // same-session request the worker had taken but not yet executed.
    queue->WaitReady(wait);
    size_t n = 0;
    {
      // The exec lock serializes this shard's mutator rounds against IO
      // threads running the inline sync fast path.
      std::lock_guard<std::mutex> exec(*exec_mu_[shard]);
      n = queue->PopBatch(options_.max_batch, std::chrono::milliseconds(0),
                          &batch);
      for (size_t i = 0; i < n; ++i) ProcessItem(shard, batch[i], &acks);
      // End of drain: coalesced acks go out now. The owning IO shards wake
      // via the sessions' flush notifiers — no broadcast wakeup needed.
      acks.FlushAll();
      // Run rules other shards forwarded to us while we were busy (or
      // idle — the WaitReady above bounds how long a forwarded trigger
      // sits).
      if (sharded) db_->DrainForwarded();
    }
    if (shard == 0) {
      hub_->ExpireParkedFetches(std::chrono::steady_clock::now());
    }
    // Exit predicate, evaluated atomically: `n == 0 && queue->shutdown()`
    // would decide from a stale pop count — a frame admitted between this
    // drain's empty pop and a separate shutdown() read would be stranded
    // (admitted, never processed, never acked). The shm doorbell protocol
    // re-checks its rings after arming the park for the same reason
    // (DESIGN.md §14).
    if (queue->DrainedAfterShutdown()) break;
  }
}

void GatewayServer::AckBatcher::Ack(const std::shared_ptr<Session>& session,
                                    const StatusReplyMsg& msg) {
  if (session->wire_version() < kProtocolV2) {
    // Legacy peer: one StatusReply per request, exactly as before.
    session->Reply(FrameType::kStatusReply, msg);
    return;
  }
  Pending* p = nullptr;
  for (Pending& candidate : pending_) {
    if (candidate.session.get() == session.get()) {
      p = &candidate;
      break;
    }
  }
  if (p == nullptr) {
    pending_.push_back(Pending{session, {}, 0});
    p = &pending_.back();
  }
  if (!p->runs.empty()) {
    BatchStatusReplyMsg::Run& last = p->runs.back();
    if (last.code == msg.code && last.message == msg.message &&
        last.payload == msg.payload) {
      ++last.count;
      ++p->total;
      return;
    }
  }
  p->runs.push_back(
      BatchStatusReplyMsg::Run{1, msg.code, msg.message, msg.payload});
  ++p->total;
}

void GatewayServer::AckBatcher::FlushSession(Session* session) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].session.get() != session) continue;
    Emit(&pending_[i]);
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

void GatewayServer::AckBatcher::FlushAll() {
  for (Pending& p : pending_) Emit(&p);
  pending_.clear();
}

void GatewayServer::AckBatcher::Emit(Pending* p) {
  if (p->total == 0) return;
  // Queue quietly, then try to write from this worker thread: when the
  // writer lock is uncontended the ack skips the wake-pipe handoff to the
  // IO shard entirely, which roughly halves sync-RPC round-trip cost.
  Encoder enc;
  if (p->total == 1) {
    // A lone ack is cheaper as the plain frame.
    StatusReplyMsg msg;
    msg.code = p->runs[0].code;
    msg.message = p->runs[0].message;
    msg.payload = p->runs[0].payload;
    msg.Encode(&enc);
    p->session->QueueReplyQuiet(FrameType::kStatusReply, enc.buffer());
  } else {
    BatchStatusReplyMsg batch;
    batch.runs = std::move(p->runs);
    batch.Encode(&enc);
    p->session->QueueReplyQuiet(FrameType::kBatchStatusReply, enc.buffer());
    server_->batched_acks_.fetch_add(p->total, std::memory_order_relaxed);
  }
  server_->WorkerFlush(p->session);
}

void GatewayServer::ProcessItem(size_t shard, const IngressItem& item,
                                AckBatcher* acks) {
  // Credit the quota back no matter how this item resolves.
  ChargeRelease release{item};
  const std::shared_ptr<Session>& session = item.session;
  if (session->closed.load(std::memory_order_acquire)) {
    return;  // Disconnected while queued; nobody is listening.
  }
  requests_processed_.fetch_add(1, std::memory_order_relaxed);

  const std::string& body = item.frame.body;
  if (item.frame.type != FrameType::kRaiseEvent) {
    // Any non-raise reply flushes the session's coalesced acks first so
    // the client still observes strict reply order.
    acks->FlushSession(session.get());
  }
  switch (item.frame.type) {
    case FrameType::kPing: {
      Result<PingMsg> msg = PingMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      PongMsg pong;
      pong.token = msg->token;
      session->Reply(FrameType::kPong, pong);
      return;
    }
    case FrameType::kRaiseEvent: {
      Result<RaiseEventMsg> msg = RaiseEventMsg::Decode(body);
      acks->Ack(session, msg.ok()
                             ? HandleRaiseEvent(shard, *msg)
                             : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kCreateRule: {
      Result<CreateRuleMsg> msg = CreateRuleMsg::Decode(body);
      session->Reply(FrameType::kStatusReply,
                     msg.ok() ? HandleCreateRule(*msg)
                              : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kEnableRule:
    case FrameType::kDisableRule: {
      Result<RuleNameMsg> msg = RuleNameMsg::Decode(body);
      session->Reply(
          FrameType::kStatusReply,
          msg.ok() ? HandleRuleToggle(
                         *msg, item.frame.type == FrameType::kEnableRule)
                   : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kSubscribe: {
      Result<SubscribeMsg> msg = SubscribeMsg::Decode(body);
      session->Reply(FrameType::kStatusReply,
                     msg.ok() ? HandleSubscribe(session, *msg)
                              : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kFetchNotifications: {
      Result<FetchMsg> msg = FetchMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleFetch(session, *msg);
      return;
    }
    case FrameType::kHello: {
      Result<HelloMsg> msg = HelloMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleHello(session, *msg);
      return;
    }
    case FrameType::kGetStats: {
      Result<StatsRequestMsg> msg = StatsRequestMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleGetStats(session.get(), *msg);
      return;
    }
    case FrameType::kHistoryScan: {
      Result<HistoryScanMsg> msg = HistoryScanMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleHistoryScan(session.get(), *msg);
      return;
    }
    case FrameType::kReplSubscribe: {
      Result<ReplSubscribeMsg> msg = ReplSubscribeMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleReplSubscribe(session.get(), *msg);
      return;
    }
    default:
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(Status::InvalidArgument(
                         "frame type is not a request")));
      return;
  }
}

Result<ReactiveObject*> GatewayServer::RelayFor(size_t shard,
                                                const std::string& class_name,
                                                const std::string& method,
                                                uint64_t oid) {
  // An application-registered live object wins: remote raises address the
  // same instance local code sees.
  if (oid != 0) {
    if (ReactiveObject* live = db_->FindLiveObject(oid)) {
      if (live->class_name() != class_name) {
        return Status::InvalidArgument(
            "oid " + std::to_string(oid) + " is a " + live->class_name() +
            ", not a " + class_name);
      }
      return live;
    }
  }

  auto& shard_relays = relays_[shard];
  auto key = std::make_pair(class_name, oid);
  auto it = shard_relays.find(key);
  if (it != shard_relays.end()) return it->second.get();

  if (!db_->catalog()->HasClass(class_name)) {
    if (!options_.auto_register_classes) {
      return Status::NotFound("unknown class " + class_name);
    }
    SENTINEL_RETURN_IF_ERROR(db_->RegisterClass(
        ClassBuilder(class_name)
            .Reactive()
            .Method(method, {.begin = true, .end = true})
            .Build()));
  }

  auto relay = std::make_unique<ReactiveObject>(
      class_name, oid == 0 ? kInvalidOid : static_cast<Oid>(oid));
  SENTINEL_RETURN_IF_ERROR(db_->RegisterLiveObject(relay.get()));
  ReactiveObject* raw = relay.get();
  shard_relays.emplace(std::move(key), std::move(relay));
  return raw;
}

StatusReplyMsg GatewayServer::HandleRaiseEvent(size_t shard,
                                               const RaiseEventMsg& msg) {
  if (db_->is_replica()) {
    // Read-only replica (or a fenced ex-primary): producers must redial
    // the current primary. FailedPrecondition is deliberate — it is not a
    // transient the client retry policy would spin on.
    return StatusReplyMsg::FromStatus(
        Status::FailedPrecondition("replica is read-only"));
  }
  if (FailPoints::AnyActive()) {
    Status fp = FailPoints::Instance().Check("gateway.raise");
    if (!fp.ok()) return StatusReplyMsg::FromStatus(fp);
  }
  Result<ReactiveObject*> relay =
      RelayFor(shard, msg.class_name, msg.method, msg.oid);
  if (!relay.ok()) return StatusReplyMsg::FromStatus(relay.status());

  ReactiveObject* object = *relay;
  Status s = db_->WithTransaction([&](Transaction*) {
    object->RaiseEvent(msg.method, msg.modifier, msg.params);
    return Status::OK();
  });
  return StatusReplyMsg::FromStatus(s, static_cast<uint64_t>(object->oid()));
}

StatusReplyMsg GatewayServer::HandleCreateRule(const CreateRuleMsg& msg) {
  if (db_->is_replica()) {
    return StatusReplyMsg::FromStatus(
        Status::FailedPrecondition("replica is read-only"));
  }
  Result<EventSignature> sig = EventSignature::Parse(msg.event_signature);
  if (!sig.ok()) return StatusReplyMsg::FromStatus(sig.status());

  // The triggering class must exist so the rule has an extent to watch.
  if (!db_->catalog()->HasClass(sig->class_name)) {
    if (!options_.auto_register_classes) {
      return StatusReplyMsg::FromStatus(
          Status::NotFound("unknown class " + sig->class_name));
    }
    Status reg = db_->RegisterClass(
        ClassBuilder(sig->class_name)
            .Reactive()
            .Method(sig->method, {.begin = true, .end = true})
            .Build());
    if (!reg.ok()) return StatusReplyMsg::FromStatus(reg);
  }

  Result<EventPtr> event = db_->CreatePrimitiveEvent(msg.event_signature);
  if (!event.ok()) return StatusReplyMsg::FromStatus(event.status());

  RuleSpec spec;
  spec.name = msg.name;
  spec.event = *event;
  spec.condition_name = msg.condition_name;
  spec.action_name =
      msg.action_name.empty() ? kNotifySubscribersAction : msg.action_name;
  spec.coupling = static_cast<CouplingMode>(msg.coupling);
  spec.priority = static_cast<int>(msg.priority);
  spec.enabled = msg.enabled;

  Result<RulePtr> rule = db_->DeclareClassRule(sig->class_name, spec);
  if (!rule.ok()) return StatusReplyMsg::FromStatus(rule.status());
  return StatusReplyMsg::FromStatus(Status::OK(),
                                    static_cast<uint64_t>((*rule)->oid()));
}

StatusReplyMsg GatewayServer::HandleRuleToggle(const RuleNameMsg& msg,
                                               bool enable) {
  Result<RulePtr> rule = db_->rules()->GetRule(msg.name);
  if (!rule.ok()) return StatusReplyMsg::FromStatus(rule.status());
  if (enable) {
    (*rule)->Enable();
  } else {
    (*rule)->Disable();
  }
  return StatusReplyMsg::FromStatus(Status::OK());
}

StatusReplyMsg GatewayServer::HandleSubscribe(
    const std::shared_ptr<Session>& session, const SubscribeMsg& msg) {
  hub_->Subscribe(session, msg.key);
  return StatusReplyMsg::FromStatus(Status::OK());
}

void GatewayServer::HandleHello(const std::shared_ptr<Session>& session,
                                const HelloMsg& msg) {
  // Pick the highest mutually supported version. Decode already bounded
  // min <= max; an entirely-too-new client gets an error it can downgrade
  // on.
  if (msg.min_version > kProtocolVersionMax) {
    session->Reply(FrameType::kStatusReply,
                   StatusReplyMsg::FromStatus(Status::InvalidArgument(
                       "unsupported protocol range (server max " +
                       std::to_string(kProtocolVersionMax) + ")")));
    return;
  }
  uint8_t version = std::min(msg.max_version, kProtocolVersionMax);
  session->tenant.store(TenantFor(msg.tenant), std::memory_order_release);
  session->version.store(version, std::memory_order_release);

  HelloReplyMsg reply;
  reply.version = version;
  reply.max_frame_body = options_.max_frame_body;
  reply.server = "sentinel-gateway/" + std::to_string(kProtocolVersionMax);
  // Queued after the version store, so the HelloReply itself is the first
  // frame stamped with the negotiated header version.
  session->Reply(FrameType::kHelloReply, reply);
}

void GatewayServer::HandleFetch(const std::shared_ptr<Session>& session,
                                const FetchMsg& msg) {
  {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (!session->pending.empty() || msg.wait_ms == 0) {
      ReplyWithBatchLocked(session.get(), msg.max);
      return;
    }
    if (session->fetch_parked) {
      // One long-poll per session: a sane client never overlaps them.
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(Status::FailedPrecondition(
                         "a fetch is already parked on this session")));
      return;
    }
  }
  hub_->ParkFetch(session, msg.max,
                  std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(msg.wait_ms));
  // A Broadcast between the check above and ParkFetch would have appended
  // to pending without seeing the park; complete immediately in that case
  // (the stale deadline entry is lazily skipped).
  {
    std::lock_guard<std::mutex> note(session->note_mu);
    if (session->fetch_parked && !session->pending.empty()) {
      session->fetch_parked = false;
      ReplyWithBatchLocked(session.get(), msg.max);
    }
  }
}

std::string GatewayServer::BuildStatsJson(uint32_t sections) const {
  std::string out = "{";
  bool first = true;
  if (sections & StatsRequestMsg::kDatabase) {
    out.append("\"db\":");
    out.append(db_->StatsSnapshot().ToJson());
    first = false;
  }
  if (sections & StatsRequestMsg::kGateway) {
    if (!first) out.push_back(',');
    GatewayStats s = stats();
    size_t depth = 0;
    size_t capacity = 0;
    for (const auto& queue : queues_) {
      depth += queue->size();
      capacity += queue->capacity();
    }
    out.append("\"gateway\":{\"sessions\":");
    out.append(std::to_string(hub_->size()));
    out.append(",\"shards\":");
    out.append(std::to_string(queues_.size()));
    out.append(",\"io_threads\":");
    out.append(std::to_string(io_shards_.size()));
    out.append(",\"tenants\":");
    out.append(std::to_string(tenant_count()));
    out.append(",\"ingress_depth\":");
    out.append(std::to_string(depth));
    out.append(",\"ingress_capacity\":");
    out.append(std::to_string(capacity));
    out.append(",\"frames_received\":");
    out.append(std::to_string(s.frames_received));
    out.append(",\"requests_processed\":");
    out.append(std::to_string(s.requests_processed));
    out.append(",\"backpressure_rejections\":");
    out.append(std::to_string(s.backpressure_rejections));
    out.append(",\"quota_rejections\":");
    out.append(std::to_string(s.quota_rejections));
    out.append(",\"protocol_errors\":");
    out.append(std::to_string(s.protocol_errors));
    out.append(",\"notifications_enqueued\":");
    out.append(std::to_string(s.notifications_enqueued));
    out.append(",\"notifications_dropped\":");
    out.append(std::to_string(s.notifications_dropped));
    out.append(",\"sessions_accepted\":");
    out.append(std::to_string(s.sessions_accepted));
    out.append(",\"batched_acks\":");
    out.append(std::to_string(s.batched_acks));
    out.append(",\"inline_raises\":");
    out.append(std::to_string(s.inline_raises));
    if (shm_host_ != nullptr) {
      out.append(",\"shm\":{\"frames\":");
      out.append(std::to_string(s.shm_frames));
      out.append(",\"batches\":");
      out.append(std::to_string(s.shm_batches));
      out.append(",\"parks\":");
      out.append(std::to_string(s.shm_parks));
      out.append(",\"wakeups\":");
      out.append(std::to_string(s.shm_wakeups));
      out.append(",\"attaches\":");
      out.append(std::to_string(s.shm_attaches));
      out.append(",\"reclaims\":");
      out.append(std::to_string(s.shm_reclaims));
      out.append("}");
    }
    out.append("}");
  }
  out.push_back('}');
  return out;
}

void GatewayServer::HandleGetStats(Session* session,
                                   const StatsRequestMsg& msg) {
  StatsReplyMsg reply;
  reply.json = BuildStatsJson(msg.sections);
  session->Reply(FrameType::kStatsReply, reply);
}

void GatewayServer::HandleHistoryScan(Session* session,
                                      const HistoryScanMsg& msg) {
  // Hard ceiling regardless of the request: each notification is tens to
  // hundreds of bytes, so 4096 keeps the reply comfortably inside any
  // negotiated frame cap. `complete` tells the client it was clamped.
  constexpr uint32_t kMaxScanItems = 4096;
  const uint32_t limit = msg.limit == 0
                             ? kMaxScanItems
                             : std::min(msg.limit, kMaxScanItems);
  HistoryQuery query;
  query.min_seq = msg.min_seq;
  query.max_seq = msg.max_seq;
  if (msg.min_micros != 0) query.min_micros = msg.min_micros;
  if (msg.max_micros != 0) query.max_micros = msg.max_micros;
  if (msg.oid != 0) query.oid = msg.oid;

  HistoryCursor after;
  after.seq = msg.after_seq;
  after.shard = msg.after_shard;
  Database::HistoryPage page;
  Status s = db_->HistoryScanPaged(query, after, limit, &page);
  if (!s.ok()) {
    session->Reply(FrameType::kStatusReply, StatusReplyMsg::FromStatus(s));
    return;
  }
  HistoryBatchMsg reply;
  reply.complete = page.complete;
  reply.next_seq = page.next.seq;
  reply.next_shard = page.next.shard;
  reply.items.reserve(page.items.size());
  for (const EventOccurrence& occ : page.items) {
    Notification n;
    n.oid = occ.oid;
    n.class_name = occ.class_name;
    n.method = occ.method;
    n.modifier = occ.modifier;
    n.params = occ.params;
    n.timestamp = occ.timestamp;
    reply.items.push_back(std::move(n));
  }
  session->Reply(FrameType::kHistoryBatch, reply);
}

void GatewayServer::HandleReplSubscribe(Session* session,
                                        const ReplSubscribeMsg& msg) {
  if (repl_ == nullptr) {
    session->Reply(FrameType::kStatusReply,
                   StatusReplyMsg::FromStatus(Status::FailedPrecondition(
                       "replication not enabled on this node")));
    return;
  }
  ReplBatchMsg reply;
  Status s = repl_->HandleReplSubscribe(msg, &reply);
  if (!s.ok()) {
    session->Reply(FrameType::kStatusReply, StatusReplyMsg::FromStatus(s));
    return;
  }
  session->Reply(FrameType::kReplBatch, reply);
}

}  // namespace net
}  // namespace sentinel
