// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"

namespace sentinel {
namespace net {

const char kNotifySubscribersAction[] = "gateway.notify";

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr auto kMutatorIdleWait = std::chrono::milliseconds(50);

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Notification FromOccurrence(const std::string& key,
                            const EventOccurrence& occ) {
  Notification n;
  n.key = key;
  n.oid = occ.oid;
  n.class_name = occ.class_name;
  n.method = occ.method;
  n.modifier = occ.modifier;
  n.params = occ.params;
  n.timestamp = occ.timestamp;
  return n;
}

}  // namespace

GatewayServer::GatewayServer(Database* db, GatewayOptions options)
    : db_(db),
      options_(std::move(options)),
      hub_(std::make_shared<NotificationHub>()) {
  const size_t nshards = db_->raise_shards();
  queues_.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    queues_.push_back(
        std::make_unique<IngressQueue>(options_.ingress_capacity));
  }
  io_staging_.resize(nshards);
  relays_.resize(nshards);
}

GatewayServer::~GatewayServer() { Stop(); }

Status GatewayServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("gateway already running");
  }

  // The rule action broadcasting to "rule:<name>" subscribers. It captures
  // the hub (shared), not the server: a rule firing after Stop() lands in
  // an empty hub instead of freed memory. AlreadyExists just means another
  // (earlier) gateway on this database registered it.
  // Gateway-side structures report into the database's registry so one
  // StatsSnapshot covers the whole process. Shard 0 keeps the historical
  // unsuffixed metric names; extra shards get ".s<i>".
  for (size_t i = 0; i < queues_.size(); ++i) {
    queues_[i]->SetMetrics(db_->metrics(),
                           i == 0 ? "" : ".s" + std::to_string(i));
  }
  hub_->SetMetrics(db_->metrics());

  std::shared_ptr<NotificationHub> hub = hub_;
  size_t max_pending = options_.max_pending_notifications;
  Status s = db_->functions()->RegisterAction(
      kNotifySubscribersAction, [hub, max_pending](RuleContext& ctx) {
        if (ctx.rule == nullptr || ctx.detection == nullptr) {
          return Status::OK();
        }
        hub->Broadcast("rule:" + ctx.rule->name(),
                       FromOccurrence("rule:" + ctx.rule->name(),
                                      ctx.detection->last()),
                       max_pending);
        return Status::OK();
      });
  if (!s.ok() && !s.IsAlreadyExists()) return s;

  // Occurrence fan-out: every raise reaching PostRaise is offered to
  // sessions subscribed to its key.
  observer_ = db_->AddOccurrenceObserver([hub,
                                          max_pending](const EventOccurrence&
                                                           occ) {
    hub->Broadcast(occ.Key(), FromOccurrence(occ.Key(), occ), max_pending);
  });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status err = Status::IOError("bind " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    Stop();
    return err;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status err =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    Stop();
    return err;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  SENTINEL_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  {
    Status err = wake_pipe_.Open();
    if (!err.ok()) {
      Stop();
      return err;
    }
  }
  hub_->SetWake([this] { wake_pipe_.Wake(); });

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(queues_.size());
  for (size_t shard = 0; shard < queues_.size(); ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
  SENTINEL_INFO << "gateway listening on " << options_.host << ":" << port_
                << " (" << queues_.size() << " worker shard"
                << (queues_.size() == 1 ? "" : "s") << ")";
  return Status::OK();
}

void GatewayServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    hub_->Wake();
    for (auto& queue : queues_) queue->Shutdown();
    if (io_thread_.joinable()) io_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    // Triggers still in flight between shards when the workers exited are
    // run to a fixpoint here, on the single remaining thread.
    db_->DrainAllForwardedShards();
  }
  hub_->SetWake(nullptr);
  hub_->Clear();
  observer_.reset();
  // Relay objects were registered live with the database; detach them so
  // the database never dereferences freed objects after we are gone.
  for (auto& shard_relays : relays_) {
    for (auto& [key, relay] : shard_relays) {
      db_->UnregisterLiveObject(relay.get()).ok();
    }
    shard_relays.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  wake_pipe_.Close();
}

GatewayStats GatewayServer::stats() const {
  GatewayStats s;
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.requests_processed = requests_processed_.load(std::memory_order_relaxed);
  s.backpressure_rejections =
      backpressure_rejections_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.notifications_enqueued = hub_->notifications_enqueued();
  s.notifications_dropped = hub_->notifications_dropped();
  s.sessions_accepted = sessions_accepted_.load(std::memory_order_relaxed);
  return s;
}

// --- IO thread ---------------------------------------------------------------

void GatewayServer::IoLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<uint64_t> ids;  // parallel to fds from index 2 on
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_.read_fd(), POLLIN, 0});
    for (const auto& [id, session] : io_sessions_) {
      short events = POLLIN;
      if (!session->unsent.empty() || session->HasOutput()) events |= POLLOUT;
      fds.push_back({session->fd, events, 0});
      ids.push_back(id);
    }

    int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      SENTINEL_WARN << "gateway poll: " << std::strerror(errno);
      break;
    }

    if (fds[1].revents & POLLIN) wake_pipe_.Drain();
    if (fds[0].revents & POLLIN) AcceptPending();

    for (size_t i = 2; i < fds.size(); ++i) {
      uint64_t id = ids[i - 2];
      auto it = io_sessions_.find(id);
      if (it == io_sessions_.end()) continue;
      Session* session = it->second.get();
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseSession(id);
        continue;
      }
      if ((fds[i].revents & POLLIN) && !DrainSocket(session)) {
        CloseSession(id);
        continue;
      }
      // Flush opportunistically: replies queued since the poll returned
      // would otherwise wait a whole poll cycle.
      if (!FlushSocket(session)) {
        CloseSession(id);
        continue;
      }
      if (session->drop_after_flush && session->unsent.empty() &&
          !session->HasOutput()) {
        CloseSession(id);
      }
    }
  }

  // Teardown on the IO thread, which owns the fds.
  for (auto& [id, session] : io_sessions_) {
    if (session->fd >= 0) ::close(session->fd);
    session->fd = -1;
    hub_->Remove(id);
  }
  io_sessions_.clear();
}

void GatewayServer::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SENTINEL_WARN << "gateway accept: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>(next_session_id_++, fd);
    io_sessions_[session->id()] = session;
    hub_->Add(session);
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool GatewayServer::DrainSocket(Session* session) {
  char chunk[kReadChunk];
  while (true) {
    ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // Peer closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    session->inbuf.append(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }

  // Split complete frames off the accumulation buffer, staging each on its
  // target shard's batch; one TryPushBatch per touched queue amortizes the
  // queue mutex over the whole read burst.
  size_t offset = 0;
  bool protocol_error = false;
  while (true) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    std::string_view view(session->inbuf.data() + offset,
                          session->inbuf.size() - offset);
    DecodeProgress progress = TryDecodeFrame(view, options_.max_frame_body,
                                             &frame, &consumed, &error);
    if (progress == DecodeProgress::kNeedMore) break;
    if (progress == DecodeProgress::kError) {
      // Malformed stream: report once, flush, drop the connection — there
      // is no way to resynchronize a corrupt length-prefixed stream.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(error));
      session->drop_after_flush = true;
      session->inbuf.clear();
      protocol_error = true;
      break;
    }
    offset += consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);

    Status admit = Status::OK();
    if (FailPoints::AnyActive()) {
      admit = FailPoints::Instance().Check("gateway.ingress");
    }
    if (!admit.ok()) {
      backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(admit));
      continue;
    }
    IngressItem item;
    item.session_id = session->id();
    size_t target = RouteFrame(session, frame);
    item.frame = std::move(frame);
    io_staging_[target].push_back(std::move(item));
  }
  if (!protocol_error && offset > 0) session->inbuf.erase(0, offset);

  for (size_t shard = 0; shard < io_staging_.size(); ++shard) {
    std::vector<IngressItem>& staged = io_staging_[shard];
    if (staged.empty()) continue;
    queues_[shard]->TryPushBatch(&staged);
    if (!staged.empty()) {
      // Backpressure (or shutdown): answer immediately from the IO thread
      // rather than buffering without bound.
      Status reject = queues_[shard]->shutdown()
                          ? Status::FailedPrecondition(
                                "ingress queue is shut down")
                          : Status::ResourceExhausted(
                                "ingress queue full (" +
                                std::to_string(queues_[shard]->capacity()) +
                                ")");
      for (size_t i = 0; i < staged.size(); ++i) {
        backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(reject));
      }
      staged.clear();
    }
  }
  return true;
}

size_t GatewayServer::RouteFrame(const Session* session,
                                 const Frame& frame) const {
  const size_t nshards = queues_.size();
  if (nshards == 1) return 0;
  if (frame.type == FrameType::kRaiseEvent) {
    uint64_t oid = 0;
    std::string class_name;
    if (PeekRaiseRouting(frame.body, &oid, &class_name)) {
      return ShardIndexForRoute(class_name, static_cast<Oid>(oid), nshards);
    }
    // Undecodable routing prefix: any worker will produce the same decode
    // error, so session affinity is fine.
  }
  // Non-raise requests (and notifications state in particular) stay on one
  // worker per session.
  return session->id() % nshards;
}

bool GatewayServer::FlushSocket(Session* session) {
  while (true) {
    if (session->unsent.empty()) {
      session->unsent = session->TakeOutput();
      if (session->unsent.empty()) return true;
    }
    ssize_t n = ::send(session->fd, session->unsent.data(),
                       session->unsent.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    session->unsent.erase(0, static_cast<size_t>(n));
  }
}

void GatewayServer::CloseSession(uint64_t id) {
  auto it = io_sessions_.find(id);
  if (it == io_sessions_.end()) return;
  if (it->second->fd >= 0) ::close(it->second->fd);
  it->second->fd = -1;
  io_sessions_.erase(it);
  hub_->Remove(id);
}

// --- Worker threads ----------------------------------------------------------

void GatewayServer::WorkerLoop(size_t shard) {
  // Pin this thread to its raise shard: every facade call below — raises,
  // transactions, forwarded-trigger rounds — now uses shard-local state.
  Database::BindRaiseShard(shard);
  IngressQueue* queue = queues_[shard].get();
  const bool sharded = queues_.size() > 1;
  std::vector<IngressItem> batch;
  while (true) {
    batch.clear();
    auto now = std::chrono::steady_clock::now();
    // Parked long-polls are expired by shard 0 only (one scan, not N);
    // other shards just use the idle wait.
    auto deadline = shard == 0 ? hub_->NextDeadline(now + kMutatorIdleWait)
                               : now + kMutatorIdleWait;
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (wait < std::chrono::milliseconds(1)) {
      wait = std::chrono::milliseconds(1);
    }
    size_t n = queue->PopBatch(options_.max_batch, wait, &batch);
    for (size_t i = 0; i < n; ++i) ProcessItem(shard, batch[i]);
    // Run rules other shards forwarded to us while we were busy (or idle —
    // the PopBatch wait above bounds how long a forwarded trigger sits).
    size_t forwarded = sharded ? db_->DrainForwarded() : 0;
    if (shard == 0) {
      hub_->ExpireParkedFetches(std::chrono::steady_clock::now());
    }
    if (n > 0 || forwarded > 0) {
      hub_->Wake();  // Replies are queued; let the IO thread write.
    }
    if (n == 0 && queue->shutdown()) break;
  }
}

void GatewayServer::ProcessItem(size_t shard, const IngressItem& item) {
  std::shared_ptr<Session> session = hub_->Find(item.session_id);
  if (session == nullptr) return;  // Disconnected while queued.
  requests_processed_.fetch_add(1, std::memory_order_relaxed);

  const std::string& body = item.frame.body;
  switch (item.frame.type) {
    case FrameType::kPing: {
      Result<PingMsg> msg = PingMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      PongMsg pong;
      pong.token = msg->token;
      session->Reply(FrameType::kPong, pong);
      return;
    }
    case FrameType::kRaiseEvent: {
      Result<RaiseEventMsg> msg = RaiseEventMsg::Decode(body);
      session->Reply(FrameType::kStatusReply,
                     msg.ok() ? HandleRaiseEvent(shard, *msg)
                              : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kCreateRule: {
      Result<CreateRuleMsg> msg = CreateRuleMsg::Decode(body);
      session->Reply(FrameType::kStatusReply,
                     msg.ok() ? HandleCreateRule(*msg)
                              : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kEnableRule:
    case FrameType::kDisableRule: {
      Result<RuleNameMsg> msg = RuleNameMsg::Decode(body);
      session->Reply(
          FrameType::kStatusReply,
          msg.ok() ? HandleRuleToggle(
                         *msg, item.frame.type == FrameType::kEnableRule)
                   : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kSubscribe: {
      Result<SubscribeMsg> msg = SubscribeMsg::Decode(body);
      session->Reply(FrameType::kStatusReply,
                     msg.ok() ? HandleSubscribe(session, *msg)
                              : StatusReplyMsg::FromStatus(msg.status()));
      return;
    }
    case FrameType::kFetchNotifications: {
      Result<FetchMsg> msg = FetchMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleFetch(session.get(), *msg);
      return;
    }
    case FrameType::kGetStats: {
      Result<StatsRequestMsg> msg = StatsRequestMsg::Decode(body);
      if (!msg.ok()) {
        session->Reply(FrameType::kStatusReply,
                       StatusReplyMsg::FromStatus(msg.status()));
        return;
      }
      HandleGetStats(session.get(), *msg);
      return;
    }
    default:
      session->Reply(FrameType::kStatusReply,
                     StatusReplyMsg::FromStatus(Status::InvalidArgument(
                         "frame type is not a request")));
      return;
  }
}

Result<ReactiveObject*> GatewayServer::RelayFor(size_t shard,
                                                const std::string& class_name,
                                                const std::string& method,
                                                uint64_t oid) {
  // An application-registered live object wins: remote raises address the
  // same instance local code sees.
  if (oid != 0) {
    if (ReactiveObject* live = db_->FindLiveObject(oid)) {
      if (live->class_name() != class_name) {
        return Status::InvalidArgument(
            "oid " + std::to_string(oid) + " is a " + live->class_name() +
            ", not a " + class_name);
      }
      return live;
    }
  }

  auto& shard_relays = relays_[shard];
  auto key = std::make_pair(class_name, oid);
  auto it = shard_relays.find(key);
  if (it != shard_relays.end()) return it->second.get();

  if (!db_->catalog()->HasClass(class_name)) {
    if (!options_.auto_register_classes) {
      return Status::NotFound("unknown class " + class_name);
    }
    SENTINEL_RETURN_IF_ERROR(db_->RegisterClass(
        ClassBuilder(class_name)
            .Reactive()
            .Method(method, {.begin = true, .end = true})
            .Build()));
  }

  auto relay = std::make_unique<ReactiveObject>(
      class_name, oid == 0 ? kInvalidOid : static_cast<Oid>(oid));
  SENTINEL_RETURN_IF_ERROR(db_->RegisterLiveObject(relay.get()));
  ReactiveObject* raw = relay.get();
  shard_relays.emplace(std::move(key), std::move(relay));
  return raw;
}

StatusReplyMsg GatewayServer::HandleRaiseEvent(size_t shard,
                                               const RaiseEventMsg& msg) {
  if (FailPoints::AnyActive()) {
    Status fp = FailPoints::Instance().Check("gateway.raise");
    if (!fp.ok()) return StatusReplyMsg::FromStatus(fp);
  }
  Result<ReactiveObject*> relay =
      RelayFor(shard, msg.class_name, msg.method, msg.oid);
  if (!relay.ok()) return StatusReplyMsg::FromStatus(relay.status());

  ReactiveObject* object = *relay;
  Status s = db_->WithTransaction([&](Transaction*) {
    object->RaiseEvent(msg.method, msg.modifier, msg.params);
    return Status::OK();
  });
  return StatusReplyMsg::FromStatus(s, static_cast<uint64_t>(object->oid()));
}

StatusReplyMsg GatewayServer::HandleCreateRule(const CreateRuleMsg& msg) {
  Result<EventSignature> sig = EventSignature::Parse(msg.event_signature);
  if (!sig.ok()) return StatusReplyMsg::FromStatus(sig.status());

  // The triggering class must exist so the rule has an extent to watch.
  if (!db_->catalog()->HasClass(sig->class_name)) {
    if (!options_.auto_register_classes) {
      return StatusReplyMsg::FromStatus(
          Status::NotFound("unknown class " + sig->class_name));
    }
    Status reg = db_->RegisterClass(
        ClassBuilder(sig->class_name)
            .Reactive()
            .Method(sig->method, {.begin = true, .end = true})
            .Build());
    if (!reg.ok()) return StatusReplyMsg::FromStatus(reg);
  }

  Result<EventPtr> event = db_->CreatePrimitiveEvent(msg.event_signature);
  if (!event.ok()) return StatusReplyMsg::FromStatus(event.status());

  RuleSpec spec;
  spec.name = msg.name;
  spec.event = *event;
  spec.condition_name = msg.condition_name;
  spec.action_name =
      msg.action_name.empty() ? kNotifySubscribersAction : msg.action_name;
  spec.coupling = static_cast<CouplingMode>(msg.coupling);
  spec.priority = static_cast<int>(msg.priority);
  spec.enabled = msg.enabled;

  Result<RulePtr> rule = db_->DeclareClassRule(sig->class_name, spec);
  if (!rule.ok()) return StatusReplyMsg::FromStatus(rule.status());
  return StatusReplyMsg::FromStatus(Status::OK(),
                                    static_cast<uint64_t>((*rule)->oid()));
}

StatusReplyMsg GatewayServer::HandleRuleToggle(const RuleNameMsg& msg,
                                               bool enable) {
  Result<RulePtr> rule = db_->rules()->GetRule(msg.name);
  if (!rule.ok()) return StatusReplyMsg::FromStatus(rule.status());
  if (enable) {
    (*rule)->Enable();
  } else {
    (*rule)->Disable();
  }
  return StatusReplyMsg::FromStatus(Status::OK());
}

StatusReplyMsg GatewayServer::HandleSubscribe(
    const std::shared_ptr<Session>& session, const SubscribeMsg& msg) {
  hub_->Subscribe(session, msg.key);
  return StatusReplyMsg::FromStatus(Status::OK());
}

void GatewayServer::HandleFetch(Session* session, const FetchMsg& msg) {
  std::lock_guard<std::mutex> note(session->note_mu);
  if (!session->pending.empty() || msg.wait_ms == 0) {
    ReplyWithBatchLocked(session, msg.max);
    return;
  }
  if (session->fetch_parked) {
    // One long-poll per session: the blocking client never overlaps them.
    session->Reply(FrameType::kStatusReply,
                   StatusReplyMsg::FromStatus(Status::FailedPrecondition(
                       "a fetch is already parked on this session")));
    return;
  }
  session->fetch_parked = true;
  session->fetch_max = msg.max;
  session->fetch_deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(msg.wait_ms);
}

std::string GatewayServer::BuildStatsJson(uint32_t sections) const {
  std::string out = "{";
  bool first = true;
  if (sections & StatsRequestMsg::kDatabase) {
    out.append("\"db\":");
    out.append(db_->StatsSnapshot().ToJson());
    first = false;
  }
  if (sections & StatsRequestMsg::kGateway) {
    if (!first) out.push_back(',');
    GatewayStats s = stats();
    size_t depth = 0;
    size_t capacity = 0;
    for (const auto& queue : queues_) {
      depth += queue->size();
      capacity += queue->capacity();
    }
    out.append("\"gateway\":{\"sessions\":");
    out.append(std::to_string(hub_->size()));
    out.append(",\"shards\":");
    out.append(std::to_string(queues_.size()));
    out.append(",\"ingress_depth\":");
    out.append(std::to_string(depth));
    out.append(",\"ingress_capacity\":");
    out.append(std::to_string(capacity));
    out.append(",\"frames_received\":");
    out.append(std::to_string(s.frames_received));
    out.append(",\"requests_processed\":");
    out.append(std::to_string(s.requests_processed));
    out.append(",\"backpressure_rejections\":");
    out.append(std::to_string(s.backpressure_rejections));
    out.append(",\"protocol_errors\":");
    out.append(std::to_string(s.protocol_errors));
    out.append(",\"notifications_enqueued\":");
    out.append(std::to_string(s.notifications_enqueued));
    out.append(",\"notifications_dropped\":");
    out.append(std::to_string(s.notifications_dropped));
    out.append(",\"sessions_accepted\":");
    out.append(std::to_string(s.sessions_accepted));
    out.append("}");
  }
  out.push_back('}');
  return out;
}

void GatewayServer::HandleGetStats(Session* session,
                                   const StatsRequestMsg& msg) {
  StatsReplyMsg reply;
  reply.json = BuildStatsJson(msg.sections);
  session->Reply(FrameType::kStatsReply, reply);
}

}  // namespace net
}  // namespace sentinel
