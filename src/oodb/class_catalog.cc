// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "oodb/class_catalog.h"

#include <algorithm>
#include <mutex>

namespace sentinel {

const MethodDescriptor* ClassDescriptor::FindMethod(
    const std::string& method) const {
  for (const MethodDescriptor& m : methods) {
    if (m.name == method) return &m;
  }
  return nullptr;
}

Status ClassCatalog::RegisterClass(const ClassDescriptor& desc) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (desc.name.empty()) {
    return Status::InvalidArgument("class name must be non-empty");
  }
  if (classes_.count(desc.name) != 0) {
    return Status::AlreadyExists("class " + desc.name);
  }
  bool inherits_reactive = desc.reactive;
  for (const std::string& super : desc.supers) {
    auto it = classes_.find(super);
    if (it == classes_.end()) {
      return Status::InvalidArgument("unknown superclass " + super +
                                     " of " + desc.name);
    }
    if (it->second.reactive) inherits_reactive = true;
  }
  ClassDescriptor stored = desc;
  // Reactivity is inherited (a subclass of a Reactive class is reactive).
  stored.reactive = inherits_reactive;
  if (!stored.reactive) {
    for (const MethodDescriptor& m : stored.methods) {
      if (m.events.any()) {
        return Status::InvalidArgument(
            "class " + desc.name + " declares event generator " + m.name +
            " but is not reactive");
      }
    }
  }
  classes_.emplace(stored.name, std::move(stored));
  return Status::OK();
}

Result<ClassDescriptor> ClassCatalog::GetClass(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(name);
  if (it == classes_.end()) return Status::NotFound("class " + name);
  return it->second;
}

bool ClassCatalog::HasClass(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return classes_.count(name) != 0;
}

bool ClassCatalog::IsSubclassOfLocked(const std::string& cls,
                                      const std::string& ancestor) const {
  if (cls == ancestor) return true;
  auto it = classes_.find(cls);
  if (it == classes_.end()) return false;
  for (const std::string& super : it->second.supers) {
    if (IsSubclassOfLocked(super, ancestor)) return true;
  }
  return false;
}

bool ClassCatalog::IsSubclassOf(const std::string& cls,
                                const std::string& ancestor) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return IsSubclassOfLocked(cls, ancestor);
}

const MethodDescriptor* ClassCatalog::ResolveMethodLocked(
    const std::string& cls, const std::string& method) const {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return nullptr;
  if (const MethodDescriptor* m = it->second.FindMethod(method)) return m;
  for (const std::string& super : it->second.supers) {
    if (const MethodDescriptor* m = ResolveMethodLocked(super, method)) {
      return m;
    }
  }
  return nullptr;
}

EventSpec ClassCatalog::EventSpecFor(const std::string& cls,
                                     const std::string& method) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(cls);
  if (it == classes_.end() || !it->second.reactive) return EventSpec{};
  const MethodDescriptor* m = ResolveMethodLocked(cls, method);
  return m == nullptr ? EventSpec{} : m->events;
}

bool ClassCatalog::IsReactive(const std::string& cls) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(cls);
  return it != classes_.end() && it->second.reactive;
}

std::vector<std::string> ClassCatalog::ClassNames() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, desc] : classes_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> ClassCatalog::SubclassesOf(
    const std::string& ancestor) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, desc] : classes_) {
    if (IsSubclassOfLocked(name, ancestor)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t ClassCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return classes_.size();
}

void ClassCatalog::Encode(Encoder* enc) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // Emit in sorted order for deterministic bytes.
  std::vector<const ClassDescriptor*> ordered;
  ordered.reserve(classes_.size());
  for (const auto& [name, desc] : classes_) ordered.push_back(&desc);
  std::sort(ordered.begin(), ordered.end(),
            [](const ClassDescriptor* a, const ClassDescriptor* b) {
              return a->name < b->name;
            });
  enc->PutU32(static_cast<uint32_t>(ordered.size()));
  for (const ClassDescriptor* desc : ordered) {
    enc->PutString(desc->name);
    enc->PutBool(desc->reactive);
    enc->PutBool(desc->notifiable);
    enc->PutU32(static_cast<uint32_t>(desc->supers.size()));
    for (const std::string& super : desc->supers) enc->PutString(super);
    enc->PutU32(static_cast<uint32_t>(desc->methods.size()));
    for (const MethodDescriptor& m : desc->methods) {
      enc->PutString(m.name);
      enc->PutBool(m.events.begin);
      enc->PutBool(m.events.end);
    }
  }
}

Status ClassCatalog::Decode(Decoder* dec) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  classes_.clear();
  uint32_t count;
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    ClassDescriptor desc;
    SENTINEL_RETURN_IF_ERROR(dec->GetString(&desc.name));
    SENTINEL_RETURN_IF_ERROR(dec->GetBool(&desc.reactive));
    SENTINEL_RETURN_IF_ERROR(dec->GetBool(&desc.notifiable));
    uint32_t nsupers;
    SENTINEL_RETURN_IF_ERROR(dec->GetU32(&nsupers));
    desc.supers.resize(nsupers);
    for (uint32_t j = 0; j < nsupers; ++j) {
      SENTINEL_RETURN_IF_ERROR(dec->GetString(&desc.supers[j]));
    }
    uint32_t nmethods;
    SENTINEL_RETURN_IF_ERROR(dec->GetU32(&nmethods));
    desc.methods.resize(nmethods);
    for (uint32_t j = 0; j < nmethods; ++j) {
      SENTINEL_RETURN_IF_ERROR(dec->GetString(&desc.methods[j].name));
      SENTINEL_RETURN_IF_ERROR(dec->GetBool(&desc.methods[j].events.begin));
      SENTINEL_RETURN_IF_ERROR(dec->GetBool(&desc.methods[j].events.end));
    }
    classes_.emplace(desc.name, std::move(desc));
  }
  return Status::OK();
}

}  // namespace sentinel
