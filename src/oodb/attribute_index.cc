// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "oodb/attribute_index.h"

#include <algorithm>

#include "oodb/object.h"

namespace sentinel {

namespace {

/// Rank for cross-type ordering. Numerics share a rank so ints and doubles
/// interleave by magnitude.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return 0;
    case Value::Type::kBool:
      return 1;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      return 2;
    case Value::Type::kString:
      return 3;
    case Value::Type::kOid:
      return 4;
  }
  return 5;
}

}  // namespace

bool ValueLess::operator()(const Value& a, const Value& b) const {
  int ra = TypeRank(a), rb = TypeRank(b);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;  // All nulls equal.
    case 1:
      return !a.AsBool() && b.AsBool();
    case 2:
      return a.AsDouble() < b.AsDouble();
    case 3:
      return a.AsString() < b.AsString();
    case 4:
      return a.AsOid() < b.AsOid();
    default:
      return false;
  }
}

Status AttributeIndex::CreateIndex(const IndexSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.class_name.empty() || spec.attribute.empty()) {
    return Status::InvalidArgument("index needs class and attribute");
  }
  if (indexes_.count(spec)) {
    return Status::AlreadyExists("index " + spec.ToString());
  }
  indexes_.emplace(spec, OneIndex{});
  return Status::OK();
}

Status AttributeIndex::DropIndex(const IndexSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indexes_.find(spec);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + spec.ToString());
  }
  indexes_.erase(it);
  for (auto& [oid, refs] : reverse_) {
    refs.erase(std::remove_if(refs.begin(), refs.end(),
                              [&spec](const auto& ref) {
                                return ref.first == spec;
                              }),
               refs.end());
  }
  return Status::OK();
}

bool AttributeIndex::HasIndex(const IndexSpec& spec) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return indexes_.count(spec) != 0;
}

std::vector<IndexSpec> AttributeIndex::Specs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IndexSpec> out;
  out.reserve(indexes_.size());
  for (const auto& [spec, index] : indexes_) out.push_back(spec);
  return out;
}

void AttributeIndex::EraseOidLocked(Oid oid) {
  auto rit = reverse_.find(oid);
  if (rit == reverse_.end()) return;
  for (const auto& [spec, value] : rit->second) {
    auto iit = indexes_.find(spec);
    if (iit == indexes_.end()) continue;
    auto vit = iit->second.entries.find(value);
    if (vit == iit->second.entries.end()) continue;
    vit->second.erase(oid);
    if (vit->second.empty()) iit->second.entries.erase(vit);
  }
  reverse_.erase(rit);
}

void AttributeIndex::OnCommittedPut(Oid oid, const std::string& class_name,
                                    const std::string& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Is any index interested in this class at all?
  bool interested = false;
  for (const auto& [spec, index] : indexes_) {
    if (spec.class_name == class_name) {
      interested = true;
      break;
    }
  }
  EraseOidLocked(oid);  // Updates replace previous entries.
  if (!interested) return;

  // Decode the default attribute-map serialization.
  PersistentObject probe(class_name, oid);
  Decoder dec(state);
  if (!probe.DeserializeState(&dec).ok() || !dec.AtEnd()) {
    ++unindexable_;
    return;
  }
  std::vector<std::pair<IndexSpec, Value>> refs;
  for (auto& [spec, index] : indexes_) {
    if (spec.class_name != class_name) continue;
    if (!probe.HasAttr(spec.attribute)) continue;
    Value value = probe.GetAttr(spec.attribute);
    index.entries[value].insert(oid);
    refs.emplace_back(spec, value);
  }
  if (!refs.empty()) {
    reverse_[oid] = std::move(refs);
    ++indexed_;
  }
}

void AttributeIndex::OnCommittedDelete(Oid oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  EraseOidLocked(oid);
}

void AttributeIndex::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [spec, index] : indexes_) index.entries.clear();
  reverse_.clear();
  indexed_ = 0;
  unindexable_ = 0;
}

Result<std::vector<Oid>> AttributeIndex::Lookup(const IndexSpec& spec,
                                                const Value& value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indexes_.find(spec);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + spec.ToString());
  }
  auto vit = it->second.entries.find(value);
  if (vit == it->second.entries.end()) return std::vector<Oid>{};
  return std::vector<Oid>(vit->second.begin(), vit->second.end());
}

Result<std::vector<Oid>> AttributeIndex::Range(const IndexSpec& spec,
                                               const Value& lo,
                                               const Value& hi) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indexes_.find(spec);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + spec.ToString());
  }
  const auto& entries = it->second.entries;
  auto begin = lo.is_null() ? entries.begin() : entries.lower_bound(lo);
  auto end = hi.is_null() ? entries.end() : entries.upper_bound(hi);
  std::vector<Oid> out;
  for (auto vit = begin; vit != end; ++vit) {
    out.insert(out.end(), vit->second.begin(), vit->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Value>> AttributeIndex::Keys(const IndexSpec& spec) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indexes_.find(spec);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + spec.ToString());
  }
  std::vector<Value> out;
  out.reserve(it->second.entries.size());
  for (const auto& [value, oids] : it->second.entries) out.push_back(value);
  return out;
}

void AttributeIndex::EncodeSpecs(Encoder* enc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  enc->PutU32(static_cast<uint32_t>(indexes_.size()));
  for (const auto& [spec, index] : indexes_) {
    enc->PutString(spec.class_name);
    enc->PutString(spec.attribute);
  }
}

Status AttributeIndex::DecodeSpecs(Decoder* dec) {
  uint32_t count;
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&count));
  std::lock_guard<std::mutex> lock(mutex_);
  indexes_.clear();
  reverse_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    IndexSpec spec;
    SENTINEL_RETURN_IF_ERROR(dec->GetString(&spec.class_name));
    SENTINEL_RETURN_IF_ERROR(dec->GetString(&spec.attribute));
    indexes_.emplace(spec, OneIndex{});
  }
  return Status::OK();
}

}  // namespace sentinel
