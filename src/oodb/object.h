// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// PersistentObject: the analog of Zeitgeist's `zg-pos` root class. In the
// paper (Fig. 3) every persistable entity — Rule and Event objects included —
// derives from zg-pos; here they derive from PersistentObject, whose state
// round-trips through the byte codec into the object store.

#ifndef SENTINEL_OODB_OBJECT_H_
#define SENTINEL_OODB_OBJECT_H_

#include <map>
#include <string>

#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"
#include "oodb/oid.h"

namespace sentinel {

/// Base class for everything that can live in the object store.
///
/// Subclasses serialize their state via SerializeState/DeserializeState.
/// The generic attribute map covers schema-driven objects (the examples and
/// tests use it); subclasses with native C++ members may override the
/// serialization hooks instead.
class PersistentObject {
 public:
  PersistentObject(std::string class_name, Oid oid = kInvalidOid)
      : class_name_(std::move(class_name)), oid_(oid) {}
  virtual ~PersistentObject() = default;

  Oid oid() const { return oid_; }
  const std::string& class_name() const { return class_name_; }

  /// Assigned by the object store when the object is first persisted.
  void set_oid(Oid oid) { oid_ = oid; }

  // --- Generic attribute state --------------------------------------------

  /// Reads attribute `name`; null Value when unset.
  Value GetAttr(const std::string& name) const;

  /// Writes attribute `name` and returns the previous value.
  Value SetAttrRaw(const std::string& name, Value value);

  bool HasAttr(const std::string& name) const;

  const std::map<std::string, Value>& attrs() const { return attrs_; }

  // --- Serialization -------------------------------------------------------

  /// Writes this object's state. Default: the attribute map.
  virtual void SerializeState(Encoder* enc) const;

  /// Restores this object's state. Default: the attribute map.
  virtual Status DeserializeState(Decoder* dec);

 protected:
  std::map<std::string, Value> attrs_;

 private:
  std::string class_name_;
  Oid oid_;
};

}  // namespace sentinel

#endif  // SENTINEL_OODB_OBJECT_H_
