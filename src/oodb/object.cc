// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "oodb/object.h"

namespace sentinel {

Value PersistentObject::GetAttr(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? Value() : it->second;
}

Value PersistentObject::SetAttrRaw(const std::string& name, Value value) {
  Value old = GetAttr(name);
  attrs_[name] = std::move(value);
  return old;
}

bool PersistentObject::HasAttr(const std::string& name) const {
  return attrs_.count(name) != 0;
}

void PersistentObject::SerializeState(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(attrs_.size()));
  for (const auto& [name, value] : attrs_) {
    enc->PutString(name);
    enc->PutValue(value);
  }
}

Status PersistentObject::DeserializeState(Decoder* dec) {
  attrs_.clear();
  uint32_t count;
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    Value value;
    SENTINEL_RETURN_IF_ERROR(dec->GetString(&name));
    SENTINEL_RETURN_IF_ERROR(dec->GetValue(&value));
    attrs_.emplace(std::move(name), std::move(value));
  }
  return Status::OK();
}

}  // namespace sentinel
