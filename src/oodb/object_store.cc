// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "oodb/object_store.h"

#include <algorithm>
#include <map>

#include "common/clock.h"
#include "common/codec.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace sentinel {

namespace {

/// Class name used for the persisted catalog record; double-underscore
/// classes are system records and excluded from extents.
constexpr char kCatalogClass[] = "__catalog__";

bool IsSystemClass(const std::string& name) {
  return name.rfind("__", 0) == 0;
}

/// One stored chunk of an object image.
struct Chunk {
  Oid oid = kInvalidOid;
  std::string class_name;
  uint32_t index = 0;
  uint32_t count = 1;
  std::string fragment;
};

std::string EncodeChunk(const Chunk& chunk) {
  Encoder enc;
  enc.PutU64(chunk.oid);
  enc.PutString(chunk.class_name);
  enc.PutU32(chunk.index);
  enc.PutU32(chunk.count);
  enc.PutString(chunk.fragment);
  return enc.Release();
}

Status DecodeChunk(const std::string& payload, Chunk* chunk) {
  Decoder dec(payload);
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(&chunk->oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&chunk->class_name));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&chunk->index));
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&chunk->count));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(&chunk->fragment));
  return Status::OK();
}

/// Largest state fragment per chunk, leaving room for the chunk envelope
/// (oid + class name + counters + length prefixes).
size_t MaxFragment(const std::string& class_name) {
  size_t envelope = 8 + 4 + class_name.size() + 4 + 4 + 4 + 64;
  return SlottedPage::MaxPayload() - envelope;
}

}  // namespace

ObjectStore::ObjectStore(size_t buffer_pages)
    : buffer_pages_hint_(buffer_pages) {}

ObjectStore::~ObjectStore() { Close().ok(); }

std::string ObjectStore::FrameRecord(Oid oid, const std::string& class_name,
                                     const std::string& state) {
  Encoder enc;
  enc.PutU64(oid);
  enc.PutString(class_name);
  enc.PutString(state);
  return enc.Release();
}

Status ObjectStore::UnframeRecord(const std::string& payload, Oid* oid,
                                  std::string* class_name,
                                  std::string* state) {
  Decoder dec(payload);
  SENTINEL_RETURN_IF_ERROR(dec.GetU64(oid));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(class_name));
  SENTINEL_RETURN_IF_ERROR(dec.GetString(state));
  return Status::OK();
}

Status ObjectStore::Open(const std::string& dir) {
  if (open_) return Status::FailedPrecondition("store already open");
  dir_ = dir;
  SENTINEL_RETURN_IF_ERROR(disk_.Open(dir + "/heap.db"));
  pool_ = std::make_unique<BufferPool>(&disk_, buffer_pages_hint_);
  SENTINEL_RETURN_IF_ERROR(wal_.Open(dir + "/wal.log"));
  group_commit_ =
      std::make_unique<GroupCommitSync>(&wal_, group_commit_window_us_);
  txn_manager_ = std::make_unique<TransactionManager>(&wal_, &lock_manager_);
  txn_manager_->SetHeap(this);
  // Every durability wait — user commits, synced aborts, system mini-txns —
  // goes through the group-commit pipeline so concurrent committers share
  // one fdatasync.
  txn_manager_->SetSyncHook(
      [this]() { return group_commit_->Sync(); });
  if (metrics_ != nullptr) {
    pool_->SetMetrics(metrics_);
    wal_.SetMetrics(metrics_);
    txn_manager_->SetMetrics(metrics_);
    group_commit_->SetMetrics(metrics_);
  }

  SENTINEL_RETURN_IF_ERROR(RebuildDirectory());
  {
    const int64_t start = SteadyNowNs();
    SENTINEL_RETURN_IF_ERROR(Recover());
    if (metrics_ != nullptr) {
      metrics::Set(metrics_->gauge("storage.recovery_ms"),
                   (SteadyNowNs() - start) / 1000000);
    }
  }

  // Restore the oid high-water mark from what the heap now contains.
  Oid max_oid = kFirstUserOid - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [oid, rids] : directory_) max_oid = std::max(max_oid,
                                                                  oid);
  }
  oids_.Restore(max_oid + 1);

  {
    std::lock_guard<std::mutex> ck(checkpoint_mu_);
    closing_ = false;  // Reopen after a Close re-arms checkpoints.
  }
  open_ = true;
  return Status::OK();
}

Status ObjectStore::Close() {
  if (!open_) return Status::OK();
  // The final checkpoint runs under checkpoint_mu_ with `closing_` set:
  // any in-flight checkpoint (a background WAL-size trigger, say) finishes
  // first, and any later caller bounces off `closing_` instead of racing
  // a second truncation against the teardown below.
  std::lock_guard<std::mutex> ck(checkpoint_mu_);
  closing_ = true;
  // Best effort: a failed checkpoint (e.g. under failure injection) must
  // not strand open file handles — the WAL still holds everything the
  // heap is missing, so recovery at the next open makes the heap current.
  Status first_error = Status::OK();
  bool crashed = FailPoints::AnyActive() && FailPoints::Instance().crashed();
  if (!crashed) {
    first_error = CheckpointLocked();
  }
  Status s = wal_.Close();
  if (!s.ok() && first_error.ok()) first_error = s;
  s = disk_.Close();
  if (!s.ok() && first_error.ok()) first_error = s;
  pool_.reset();
  txn_manager_.reset();
  group_commit_.reset();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    directory_.clear();
    extents_.clear();
    data_pages_.clear();
  }
  open_ = false;
  return first_error;
}

Status ObjectStore::RebuildDirectory() {
  std::lock_guard<std::mutex> lock(mutex_);
  directory_.clear();
  extents_.clear();
  data_pages_.clear();
  // Collect chunks per oid first; chunk order on disk is arbitrary.
  std::unordered_map<Oid, std::map<uint32_t, RecordId>> chunks;
  std::unordered_map<Oid, std::string> classes;
  uint32_t pages = disk_.page_count();
  for (PageId pid = 0; pid < pages; ++pid) {
    SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    SlottedPage sp(page);
    if (!sp.IsInitialized()) {
      pool_->UnpinPage(pid, false).ok();
      continue;
    }
    data_pages_.push_back(pid);
    for (uint16_t slot = 0; slot < sp.SlotCount(); ++slot) {
      if (!sp.IsLive(slot)) continue;
      std::string payload;
      Status s = sp.Read(slot, &payload);
      if (!s.ok()) continue;
      Chunk chunk;
      s = DecodeChunk(payload, &chunk);
      if (!s.ok()) {
        pool_->UnpinPage(pid, false).ok();
        return Status::Corruption("bad record on page " +
                                  std::to_string(pid));
      }
      chunks[chunk.oid][chunk.index] = RecordId{pid, slot};
      classes[chunk.oid] = chunk.class_name;
    }
    SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(pid, false));
  }
  for (auto& [oid, ordered] : chunks) {
    std::vector<RecordId> rids;
    rids.reserve(ordered.size());
    for (auto& [index, rid] : ordered) rids.push_back(rid);
    directory_[oid] = std::move(rids);
    const std::string& cls = classes[oid];
    if (!IsSystemClass(cls)) extents_[cls].insert(oid);
  }
  return Status::OK();
}

Status ObjectStore::Recover() {
  std::vector<WalRecord> records;
  SENTINEL_RETURN_IF_ERROR(wal_.ReadAll(&records));
  if (metrics_ != nullptr) {
    metrics::Set(metrics_->gauge("storage.recovery_records"),
                 static_cast<int64_t>(records.size()));
  }
  if (records.empty()) return Status::OK();
  SENTINEL_FAILPOINT("store.recover");

  // Pass 1: which transactions committed? An abort record anywhere in the
  // log overrides a commit record for the same txn — it is written (and
  // synced) when a commit failed mid-WAL, neutralizing a commit record
  // that may have become durable for a transaction whose caller was told
  // it aborted.
  std::set<TxnId> committed, aborted;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn);
    if (rec.type == WalRecordType::kAbort) aborted.insert(rec.txn);
  }
  for (TxnId txn : aborted) committed.erase(txn);
  // Pass 2: redo committed operations in log order (idempotent).
  size_t redone = 0;
  for (const WalRecord& rec : records) {
    if (committed.count(rec.txn) == 0) continue;
    if (rec.type == WalRecordType::kPut) {
      SENTINEL_RETURN_IF_ERROR(ApplyPut(rec.oid, rec.payload));
      ++redone;
    } else if (rec.type == WalRecordType::kDelete) {
      Status s = ApplyDelete(rec.oid);
      if (!s.ok() && !s.IsNotFound()) return s;  // Delete may be replayed.
      ++redone;
    }
  }
  if (redone > 0) {
    SENTINEL_INFO << "recovery redid " << redone << " operations";
  }
  // The heap is current: checkpoint so the log does not grow unboundedly.
  SENTINEL_RETURN_IF_ERROR(pool_->FlushAll());
  return wal_.Reset();
}

Result<RecordId> ObjectStore::InsertRecord(const std::string& payload) {
  // Caller holds mutex_.
  if (payload.size() > SlottedPage::MaxPayload()) {
    return Status::InvalidArgument("chunk exceeds page capacity (" +
                                   std::to_string(payload.size()) +
                                   " bytes)");
  }
  // Try recent pages first (cheap heuristic; most pages fill in order).
  for (auto it = data_pages_.rbegin(); it != data_pages_.rend(); ++it) {
    PageId pid = *it;
    SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    SlottedPage sp(page);
    if (sp.FreeSpace() >= payload.size() + 8) {
      Result<uint16_t> slot = sp.Insert(payload);
      if (slot.ok()) {
        SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(pid, true));
        return RecordId{pid, slot.value()};
      }
    }
    SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(pid, false));
    if (data_pages_.size() - (it - data_pages_.rbegin()) > 4) break;
  }
  // Allocate a fresh page.
  SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->AllocatePage());
  SlottedPage sp(page);
  sp.Init();
  Result<uint16_t> slot = sp.Insert(payload);
  if (!slot.ok()) {
    pool_->UnpinPage(page->page_id(), true).ok();
    return slot.status();
  }
  data_pages_.push_back(page->page_id());
  RecordId rid{page->page_id(), slot.value()};
  SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(page->page_id(), true));
  return rid;
}

Status ObjectStore::ReadRecord(const RecordId& rid,
                               std::string* payload) const {
  SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Status s = sp.Read(rid.slot, payload);
  pool_->UnpinPage(rid.page_id, false).ok();
  return s;
}

Status ObjectStore::ReadObjectLocked(Oid oid, std::string* class_name,
                                     std::string* state) const {
  auto it = directory_.find(oid);
  if (it == directory_.end()) return Status::NotFound(OidToString(oid));
  state->clear();
  for (size_t i = 0; i < it->second.size(); ++i) {
    std::string payload;
    SENTINEL_RETURN_IF_ERROR(ReadRecord(it->second[i], &payload));
    Chunk chunk;
    SENTINEL_RETURN_IF_ERROR(DecodeChunk(payload, &chunk));
    if (chunk.oid != oid || chunk.index != i ||
        chunk.count != it->second.size()) {
      return Status::Corruption("inconsistent chunk chain for " +
                                OidToString(oid));
    }
    if (i == 0) *class_name = chunk.class_name;
    state->append(chunk.fragment);
  }
  return Status::OK();
}

Status ObjectStore::Put(Transaction* txn, Oid oid,
                        const std::string& class_name,
                        const std::string& state) {
  if (!open_) return Status::FailedPrecondition("store not open");
  if (oid == kInvalidOid) return Status::InvalidArgument("invalid oid");
  SENTINEL_RETURN_IF_ERROR(txn->Lock(oid, LockMode::kExclusive));
  txn->StagePut(oid, FrameRecord(oid, class_name, state));
  return Status::OK();
}

Status ObjectStore::Get(Transaction* txn, Oid oid, std::string* class_name,
                        std::string* state) {
  if (!open_) return Status::FailedPrecondition("store not open");
  if (txn != nullptr) {
    if (const PendingWrite* w = txn->FindWrite(oid)) {
      if (w->op == PendingWrite::Op::kDelete) {
        return Status::NotFound(OidToString(oid) + " deleted in this txn");
      }
      Oid dummy;
      return UnframeRecord(w->payload, &dummy, class_name, state);
    }
    SENTINEL_RETURN_IF_ERROR(txn->Lock(oid, LockMode::kShared));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return ReadObjectLocked(oid, class_name, state);
}

Status ObjectStore::Delete(Transaction* txn, Oid oid) {
  if (!open_) return Status::FailedPrecondition("store not open");
  SENTINEL_RETURN_IF_ERROR(txn->Lock(oid, LockMode::kExclusive));
  bool exists_committed = Exists(oid);
  bool staged = txn->FindWrite(oid) != nullptr;
  if (!exists_committed && !staged) {
    return Status::NotFound(OidToString(oid));
  }
  txn->StageDelete(oid);
  return Status::OK();
}

bool ObjectStore::Exists(Oid oid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return directory_.count(oid) != 0;
}

std::vector<Oid> ObjectStore::Extent(const std::string& class_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = extents_.find(class_name);
  if (it == extents_.end()) return {};
  return std::vector<Oid>(it->second.begin(), it->second.end());
}

std::vector<Oid> ObjectStore::DeepExtent(const std::string& class_name,
                                         const ClassCatalog& catalog) const {
  std::vector<Oid> out;
  for (const std::string& cls : catalog.SubclassesOf(class_name)) {
    std::vector<Oid> part = Extent(cls);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t ObjectStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [cls, members] : extents_) n += members.size();
  return n;
}

std::vector<Oid> ObjectStore::AllOids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Oid> oids;
  oids.reserve(directory_.size());
  for (const auto& [oid, rids] : directory_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  return oids;
}

void ObjectStore::RefreshOidFloor() {
  std::lock_guard<std::mutex> lock(mutex_);
  Oid max_oid = kFirstUserOid - 1;
  for (const auto& [oid, rids] : directory_) {
    max_oid = std::max(max_oid, oid);
  }
  oids_.Restore(max_oid + 1);
}

Status ObjectStore::Checkpoint() {
  std::lock_guard<std::mutex> ck(checkpoint_mu_);
  if (closing_) return Status::FailedPrecondition("store closing");
  return CheckpointLocked();
}

Status ObjectStore::CheckpointLocked() {
  if (pool_ == nullptr) return Status::FailedPrecondition("store not open");
  SENTINEL_FAILPOINT("store.checkpoint");

  // (1) Capture the stable LSN: every record below it is already appended.
  SENTINEL_ASSIGN_OR_RETURN(uint64_t stable_lsn, wal_.CurrentLsn());

  // (2) Barrier: commits hold the apply barrier shared from WAL append to
  // heap apply, so acquiring it exclusive (and releasing immediately)
  // proves every commit logged below stable_lsn has reached the in-memory
  // heap. Commits that append after the capture land at LSNs >= stable_lsn
  // and survive the truncation — they may run concurrently from here on.
  if (txn_manager_ != nullptr) {
    std::unique_lock<std::shared_mutex> barrier(
        *txn_manager_->apply_barrier());
  }

  // (3) Flush dirty pages while mutators keep committing. Pages dirtied by
  // post-capture commits may flush early too — harmless, redo is
  // idempotent and their WAL records are retained.
  SENTINEL_RETURN_IF_ERROR(pool_->FlushAll());

  // (4) A durable checkpoint record (its own LSN >= stable_lsn, so it
  // survives the truncation) marks the heap current up to stable_lsn.
  Encoder mark;
  mark.PutU64(stable_lsn);
  WalRecord ckpt{WalRecordType::kCheckpoint, 0, 0, mark.Release()};
  SENTINEL_RETURN_IF_ERROR(wal_.Append(ckpt));
  SENTINEL_RETURN_IF_ERROR(group_commit_ != nullptr ? group_commit_->Sync()
                                                    : wal_.Sync());

  // (5) Drop the prefix; recovery now replays only the suffix.
  SENTINEL_RETURN_IF_ERROR(wal_.TruncateTo(stable_lsn));
  checkpoint_generation_.fetch_add(1, std::memory_order_release);
  if (metrics_ != nullptr) {
    metrics::Add(metrics_->counter("storage.checkpoints"));
  }
  return Status::OK();
}

Status ObjectStore::EraseChunksLocked(Oid oid) {
  auto it = directory_.find(oid);
  if (it == directory_.end()) return Status::NotFound(OidToString(oid));
  std::string class_name;
  for (size_t i = 0; i < it->second.size(); ++i) {
    const RecordId& rid = it->second[i];
    SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
    SlottedPage sp(page);
    if (i == 0) {
      std::string payload;
      Chunk chunk;
      if (sp.Read(rid.slot, &payload).ok() &&
          DecodeChunk(payload, &chunk).ok()) {
        class_name = chunk.class_name;
      }
    }
    Status s = sp.Delete(rid.slot);
    SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, true));
    SENTINEL_RETURN_IF_ERROR(s);
  }
  if (!class_name.empty()) {
    auto eit = extents_.find(class_name);
    if (eit != extents_.end()) eit->second.erase(oid);
  }
  directory_.erase(it);
  return Status::OK();
}

Status ObjectStore::ApplyPut(uint64_t oid, const std::string& payload) {
  SENTINEL_FAILPOINT("store.apply_put");
  Oid decoded_oid;
  std::string class_name, state;
  SENTINEL_RETURN_IF_ERROR(
      UnframeRecord(payload, &decoded_oid, &class_name, &state));
  if (decoded_oid != oid) {
    return Status::Corruption("framed oid mismatch");
  }

  // Split the state into page-sized fragments.
  size_t max_fragment = MaxFragment(class_name);
  std::vector<Chunk> chunks;
  size_t offset = 0;
  do {
    Chunk chunk;
    chunk.oid = oid;
    chunk.class_name = class_name;
    chunk.index = static_cast<uint32_t>(chunks.size());
    chunk.fragment = state.substr(offset, max_fragment);
    offset += chunk.fragment.size();
    chunks.push_back(std::move(chunk));
  } while (offset < state.size());
  for (Chunk& chunk : chunks) {
    chunk.count = static_cast<uint32_t>(chunks.size());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = directory_.find(oid);
    if (it != directory_.end() && it->second.size() == 1 &&
        chunks.size() == 1) {
      // Fast path: single-chunk update in place (or moved among pages).
      RecordId rid = it->second[0];
      std::string encoded = EncodeChunk(chunks[0]);
      SENTINEL_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
      SlottedPage sp(page);
      Status s = sp.Update(rid.slot, encoded);
      if (s.ok()) {
        SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, true));
      } else {
        sp.Delete(rid.slot).ok();
        SENTINEL_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, true));
        SENTINEL_ASSIGN_OR_RETURN(RecordId moved, InsertRecord(encoded));
        directory_[oid] = {moved};
      }
    } else {
      // General path: drop old chunks, insert the new chain.
      if (it != directory_.end()) {
        SENTINEL_RETURN_IF_ERROR(EraseChunksLocked(oid));
      }
      std::vector<RecordId> rids;
      rids.reserve(chunks.size());
      for (const Chunk& chunk : chunks) {
        SENTINEL_ASSIGN_OR_RETURN(RecordId rid,
                                  InsertRecord(EncodeChunk(chunk)));
        rids.push_back(rid);
      }
      directory_[oid] = std::move(rids);
      if (!IsSystemClass(class_name)) extents_[class_name].insert(oid);
    }
  }
  if (observer_ != nullptr && !IsSystemClass(class_name)) {
    observer_->OnCommittedPut(oid, class_name, state);
  }
  return Status::OK();
}

Status ObjectStore::ApplyDelete(uint64_t oid) {
  SENTINEL_FAILPOINT("store.apply_delete");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SENTINEL_RETURN_IF_ERROR(EraseChunksLocked(oid));
  }
  if (observer_ != nullptr) observer_->OnCommittedDelete(oid);
  return Status::OK();
}

Status ObjectStore::SystemPut(Oid oid, const std::string& class_name,
                              const std::string& state) {
  if (!open_) return Status::FailedPrecondition("store not open");
  SENTINEL_FAILPOINT("store.system_put");
  std::string framed = FrameRecord(oid, class_name, state);
  // System mini-transaction so the write is durable in the WAL before it
  // lands on the heap. Every mini-txn gets a distinct id from a reserved
  // range: a shared id would let recovery replay a torn mini-txn's Put on
  // the strength of an earlier mini-txn's commit record.
  TxnId id = kSystemTxnBase + system_txn_seq_.fetch_add(1);
  WalRecord begin{WalRecordType::kBegin, id, 0, {}};
  WalRecord put{WalRecordType::kPut, id, oid, framed};
  WalRecord commit{WalRecordType::kCommit, id, 0, {}};
  // Mini-txns observe the same append-to-apply barrier as user commits so
  // a fuzzy checkpoint cannot truncate their records before the heap apply.
  std::shared_lock<std::shared_mutex> apply_guard(
      *txn_manager_->apply_barrier());
  SENTINEL_RETURN_IF_ERROR(wal_.Append(begin));
  SENTINEL_RETURN_IF_ERROR(wal_.Append(put));
  SENTINEL_RETURN_IF_ERROR(wal_.Append(commit));
  SENTINEL_RETURN_IF_ERROR(group_commit_ != nullptr ? group_commit_->Sync()
                                                    : wal_.Sync());
  return ApplyPut(oid, framed);
}

Status ObjectStore::SystemApplyBatch(const std::vector<ReplOp>& ops) {
  if (!open_) return Status::FailedPrecondition("store not open");
  if (ops.empty()) return Status::OK();
  SENTINEL_FAILPOINT("store.apply_batch");
  // One mini-transaction for the whole batch: recovery replays it all or
  // none, so a replication cursor written as one of the ops can never
  // describe data the heap does not durably hold.
  TxnId id = kSystemTxnBase + system_txn_seq_.fetch_add(1);
  std::vector<std::string> framed(ops.size());
  std::shared_lock<std::shared_mutex> apply_guard(
      *txn_manager_->apply_barrier());
  SENTINEL_RETURN_IF_ERROR(
      wal_.Append({WalRecordType::kBegin, id, 0, {}}));
  for (size_t i = 0; i < ops.size(); ++i) {
    const ReplOp& op = ops[i];
    if (op.del) {
      SENTINEL_RETURN_IF_ERROR(
          wal_.Append({WalRecordType::kDelete, id, op.oid, {}}));
    } else {
      framed[i] = FrameRecord(op.oid, op.class_name, op.state);
      SENTINEL_RETURN_IF_ERROR(
          wal_.Append({WalRecordType::kPut, id, op.oid, framed[i]}));
    }
  }
  SENTINEL_RETURN_IF_ERROR(
      wal_.Append({WalRecordType::kCommit, id, 0, {}}));
  SENTINEL_RETURN_IF_ERROR(group_commit_ != nullptr ? group_commit_->Sync()
                                                    : wal_.Sync());
  for (size_t i = 0; i < ops.size(); ++i) {
    const ReplOp& op = ops[i];
    if (op.del) {
      Status s = ApplyDelete(op.oid);
      // A delete shipped twice (batch replay after a follower restart)
      // finds nothing the second time: that is idempotent redo, not error.
      if (!s.ok() && !s.IsNotFound()) return s;
    } else {
      SENTINEL_RETURN_IF_ERROR(ApplyPut(op.oid, framed[i]));
    }
  }
  return Status::OK();
}

Status ObjectStore::SaveCatalog(const ClassCatalog& catalog) {
  Encoder enc;
  catalog.Encode(&enc);
  return SystemPut(kCatalogOid, kCatalogClass, enc.Release());
}

Status ObjectStore::LoadCatalog(ClassCatalog* catalog) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::string class_name, state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Status s = ReadObjectLocked(kCatalogOid, &class_name, &state);
    if (s.IsNotFound()) return Status::NotFound("no saved catalog");
    SENTINEL_RETURN_IF_ERROR(s);
  }
  Decoder dec(state);
  return catalog->Decode(&dec);
}

}  // namespace sentinel
