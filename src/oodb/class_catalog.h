// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Class catalog: the schema of a Sentinel database.
//
// A class declaration carries, besides its name and superclasses, the
// paper's *event interface* (§3.1): the subset of methods designated as
// primitive event generators and whether each raises its event at
// begin-of-method (bom), end-of-method (eom), or both:
//
//   Reactive class definition =
//       Traditional class definition + Event interface specification
//
// Only classes marked reactive may generate events; passive classes incur no
// overhead (§3.2). The catalog also answers inheritance queries — both rule
// applicability ("is this object an instance of the rule's class?") and
// event-interface inheritance flow through IsSubclassOf.

#ifndef SENTINEL_OODB_CLASS_CATALOG_H_
#define SENTINEL_OODB_CLASS_CATALOG_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/status.h"

namespace sentinel {

/// When a designated method raises its primitive event(s).
struct EventSpec {
  bool begin = false;  ///< Raise bom before the method body runs.
  bool end = false;    ///< Raise eom after the method body returns.

  bool any() const { return begin || end; }
  bool operator==(const EventSpec&) const = default;
};

/// One method in a class declaration.
struct MethodDescriptor {
  std::string name;       ///< Unqualified method name, e.g. "SetSalary".
  EventSpec events;       ///< Event-interface designation (may be empty).

  bool operator==(const MethodDescriptor&) const = default;
};

/// One class in the schema.
struct ClassDescriptor {
  std::string name;
  std::vector<std::string> supers;  ///< Direct superclasses (multiple OK).
  std::vector<MethodDescriptor> methods;
  bool reactive = false;   ///< Derives from Reactive (event producer).
  bool notifiable = false; ///< Derives from Notifiable (event consumer).

  /// Finds a locally declared method; nullptr when absent.
  const MethodDescriptor* FindMethod(const std::string& method) const;
};

/// Fluent builder so schema declarations read like the paper's listings:
///
///   ClassBuilder("Employee").Reactive()
///       .Method("SetSalary", {.begin = false, .end = true})
///       .Method("GetName")
///       .Build();
class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name) { desc_.name = std::move(name); }

  ClassBuilder& Extends(std::string super) {
    desc_.supers.push_back(std::move(super));
    return *this;
  }
  ClassBuilder& Reactive() {
    desc_.reactive = true;
    return *this;
  }
  ClassBuilder& Notifiable() {
    desc_.notifiable = true;
    return *this;
  }
  /// Declares a method; `events` defaults to "not an event generator".
  ClassBuilder& Method(std::string name, EventSpec events = {}) {
    desc_.methods.push_back({std::move(name), events});
    return *this;
  }
  ClassDescriptor Build() { return desc_; }

 private:
  ClassDescriptor desc_;
};

/// Registry of classes with inheritance-aware queries. Thread safe.
class ClassCatalog {
 public:
  ClassCatalog() = default;

  /// Adds a class. Fails AlreadyExists on a duplicate name and
  /// InvalidArgument when a superclass is unknown or event designations are
  /// given by a non-reactive class.
  Status RegisterClass(const ClassDescriptor& desc);

  /// Looks up a class by name.
  Result<ClassDescriptor> GetClass(const std::string& name) const;

  bool HasClass(const std::string& name) const;

  /// True when `cls` equals `ancestor` or transitively inherits from it
  /// (multiple inheritance supported).
  bool IsSubclassOf(const std::string& cls,
                    const std::string& ancestor) const;

  /// Event-interface query with inheritance: resolves `method` on `cls` or
  /// the nearest ancestor declaring it, and reports its EventSpec. Returns
  /// an empty spec when the method is not a designated generator (or the
  /// class is not reactive).
  EventSpec EventSpecFor(const std::string& cls,
                         const std::string& method) const;

  /// True if instances of `cls` may produce events at all.
  bool IsReactive(const std::string& cls) const;

  /// All registered class names (sorted, for deterministic iteration).
  std::vector<std::string> ClassNames() const;

  /// All classes equal to or derived from `ancestor` (including itself).
  std::vector<std::string> SubclassesOf(const std::string& ancestor) const;

  size_t size() const;

  /// Serialization for catalog persistence.
  void Encode(Encoder* enc) const;
  Status Decode(Decoder* dec);

 private:
  bool IsSubclassOfLocked(const std::string& cls,
                          const std::string& ancestor) const;
  const MethodDescriptor* ResolveMethodLocked(
      const std::string& cls, const std::string& method) const;

  /// shared_mutex: EventSpecFor/HasClass run on every raise from every
  /// shard concurrently; RegisterClass/Decode (DDL) take it exclusively.
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, ClassDescriptor> classes_;
};

}  // namespace sentinel

#endif  // SENTINEL_OODB_CLASS_CATALOG_H_
