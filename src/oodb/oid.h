// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Object identity. Every persistent or reactive entity in Sentinel — user
// objects, events, and rules alike (first-class citizenship, paper §3.3/§3.4)
// — carries a 64-bit Oid issued by the object store.

#ifndef SENTINEL_OODB_OID_H_
#define SENTINEL_OODB_OID_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sentinel {

/// Database-wide object identifier. 0 is invalid; low ids are reserved for
/// system objects (catalog, oid counter).
using Oid = uint64_t;

constexpr Oid kInvalidOid = 0;
/// Record holding the serialized class catalog.
constexpr Oid kCatalogOid = 1;
/// Record holding the persisted oid counter.
constexpr Oid kOidCounterOid = 2;
/// First id handed to user/rule/event objects.
constexpr Oid kFirstUserOid = 100;

/// Issues unique Oids. The current high-water mark is persisted by the
/// object store so ids survive restarts.
class OidGenerator {
 public:
  explicit OidGenerator(Oid next = kFirstUserOid) : next_(next) {}

  Oid Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Current high-water mark (the next id to be issued).
  Oid Peek() const { return next_.load(std::memory_order_relaxed); }

  /// Restores the counter after recovery; `next` must be >= kFirstUserOid.
  void Restore(Oid next);

 private:
  std::atomic<Oid> next_;
};

/// Renders "oid:<n>" for diagnostics.
std::string OidToString(Oid oid);

}  // namespace sentinel

#endif  // SENTINEL_OODB_OID_H_
