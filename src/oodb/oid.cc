// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "oodb/oid.h"

#include <algorithm>

namespace sentinel {

void OidGenerator::Restore(Oid next) {
  next_.store(std::max(next, kFirstUserOid), std::memory_order_relaxed);
}

std::string OidToString(Oid oid) { return "oid:" + std::to_string(oid); }

}  // namespace sentinel
