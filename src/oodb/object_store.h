// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// ObjectStore: the persistence substrate standing in for Zeitgeist.
//
// The store maps Oids to serialized object images kept in slotted pages
// behind a buffer pool, with transactional updates (strict 2PL + redo WAL,
// no-steal). It also maintains *class extents* — the set of committed
// instances per class — which is what lets class-level rules subscribe to
// "all instances of C, including ones created later" (paper §3.5/§4.7).
//
// On-disk layout: an object is stored as one or more *chunk* records, each
// [oid u64][class name][chunk index u32][chunk count u32][state fragment],
// so object images larger than a page split transparently. The directory
// (oid -> ordered chunk record ids) and the extents are rebuilt by a full
// scan at open, then kept incrementally.

#ifndef SENTINEL_OODB_OBJECT_STORE_H_
#define SENTINEL_OODB_OBJECT_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "histlog/group_commit.h"
#include "oodb/class_catalog.h"
#include "oodb/oid.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace sentinel {

/// System mini-transactions (SystemPut) draw WAL txn ids from this base so
/// they never collide with user transactions — and, crucially, with each
/// other: sharing one id would let recovery replay a torn mini-txn's
/// records on the strength of an unrelated mini-txn's commit record.
constexpr TxnId kSystemTxnBase = 1ull << 63;

/// Observes committed installs (post-WAL, post-heap). The attribute index
/// and similar derived structures hang off this; observers see committed
/// images only, never staged transaction state. Callbacks run on the
/// committing thread with no store locks held.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;
  virtual void OnCommittedPut(Oid oid, const std::string& class_name,
                              const std::string& state) = 0;
  virtual void OnCommittedDelete(Oid oid) = 0;
};

/// Transactional Oid -> object-image store with class extents.
class ObjectStore : public HeapApplier {
 public:
  /// `buffer_pages` sizes the buffer pool.
  explicit ObjectStore(size_t buffer_pages = 256);
  ~ObjectStore() override;

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Opens (creating if needed) the database under directory `dir`
  /// (heap file `dir/heap.db`, log `dir/wal.log`), replays the WAL, and
  /// rebuilds the directory and extents.
  Status Open(const std::string& dir);

  /// Checkpoints and closes. Idempotent.
  Status Close();

  bool is_open() const { return open_; }

  /// Issues a fresh object id.
  Oid NewOid() { return oids_.Next(); }

  /// Transaction factory/committer (shared with the rule scheduler).
  TransactionManager* txns() { return txn_manager_.get(); }
  LockManager* locks() { return &lock_manager_; }

  /// The log itself (checkpoint thresholds, tests, benches).
  WalManager* wal() { return &wal_; }

  /// The commit-sync pipeline (created at Open; see SetGroupCommitWindow).
  GroupCommitSync* commit_sync() { return group_commit_.get(); }

  /// Group-commit batching window in microseconds; 0 (the default) syncs
  /// each commit individually. Must be called before Open.
  void SetGroupCommitWindow(uint32_t window_us) {
    group_commit_window_us_ = window_us;
  }

  // --- Transactional object access ----------------------------------------

  /// Stages a create-or-update of `oid` under `txn` (X lock).
  Status Put(Transaction* txn, Oid oid, const std::string& class_name,
             const std::string& state);

  /// Reads `oid`: the transaction's own staged write if any, else the
  /// committed image (S lock).
  Status Get(Transaction* txn, Oid oid, std::string* class_name,
             std::string* state);

  /// Stages a delete of `oid` (X lock).
  Status Delete(Transaction* txn, Oid oid);

  // --- Committed-state queries --------------------------------------------

  /// True if a committed image of `oid` exists.
  bool Exists(Oid oid) const;

  /// Committed instances of exactly `class_name` (sorted).
  std::vector<Oid> Extent(const std::string& class_name) const;

  /// Committed instances of `class_name` or any registered subclass.
  std::vector<Oid> DeepExtent(const std::string& class_name,
                              const ClassCatalog& catalog) const;

  /// Number of committed user objects.
  size_t ObjectCount() const;

  /// Every committed oid — system records included — sorted ascending. The
  /// replication snapshot walks this with an exclusive cursor, so a stable
  /// total order is the contract.
  std::vector<Oid> AllOids() const;

  // --- Maintenance ---------------------------------------------------------

  /// Fuzzy checkpoint: captures the stable LSN, waits out in-flight heap
  /// applies (without stalling new commits), flushes dirty pages, writes a
  /// durable checkpoint record carrying the stable LSN, and truncates the
  /// WAL behind it. Mutators keep committing throughout; only commits
  /// caught between WAL-durable and heap-applied are briefly waited on.
  /// Bounds recovery to replaying the WAL suffix since the last checkpoint.
  /// Whole checkpoints are serialized against each other and against
  /// Close: a call that arrives while another checkpoint runs blocks until
  /// it finishes, and a call that loses the race with Close returns
  /// FailedPrecondition instead of truncating a log being torn down.
  Status Checkpoint();

  /// Completed (successful) checkpoints since open — each one truncated
  /// the WAL exactly once.
  uint64_t checkpoint_generation() const {
    return checkpoint_generation_.load(std::memory_order_acquire);
  }

  /// Writes a system record (catalog, registries) durably and immediately,
  /// outside user transactions, via a WAL mini-transaction.
  Status SystemPut(Oid oid, const std::string& class_name,
                   const std::string& state);

  /// One operation of a replication apply batch (see SystemApplyBatch).
  struct ReplOp {
    bool del = false;  ///< true = delete `oid`; false = put.
    Oid oid = kInvalidOid;
    std::string class_name;  ///< Put only.
    std::string state;       ///< Put only.
  };

  /// Applies a replicated batch durably: all ops are logged in ONE local
  /// WAL mini-transaction (begin, ops, commit, one group sync) and then
  /// installed in the heap. A follower that crashes mid-batch recovers to
  /// a batch boundary — its own redo replay either has the whole batch or
  /// none of it — so a ship cursor persisted *inside* the batch can never
  /// run ahead of the data it describes.
  Status SystemApplyBatch(const std::vector<ReplOp>& ops);

  /// Re-derives the oid allocator's floor from the committed directory —
  /// exactly what Open does after recovery. A promoted replica calls this
  /// so the oids it issues as the new primary never collide with objects
  /// it received through replication apply (which bypasses NewOid).
  void RefreshOidFloor();

  /// Persists the catalog (system mini-transaction, durable immediately).
  Status SaveCatalog(const ClassCatalog& catalog);

  /// Restores the catalog saved by SaveCatalog; NotFound if never saved.
  Status LoadCatalog(ClassCatalog* catalog);

  /// Registers the (single) commit observer; pass nullptr to clear.
  /// System-class records do not notify.
  void SetCommitObserver(CommitObserver* observer) { observer_ = observer; }

  /// Wires the storage substrate (buffer pool, WAL, txn manager) to the
  /// registry. Call before Open so recovery-time activity is counted; the
  /// components created inside Open pick the registry up from here.
  void SetMetrics(MetricsRegistry* registry) { metrics_ = registry; }

  // --- HeapApplier (committed writes land here) ----------------------------

  Status ApplyPut(uint64_t oid, const std::string& payload) override;
  Status ApplyDelete(uint64_t oid) override;

  /// Frames [oid][class][state] as stored on the heap and staged in txns.
  static std::string FrameRecord(Oid oid, const std::string& class_name,
                                 const std::string& state);
  /// Inverse of FrameRecord.
  static Status UnframeRecord(const std::string& payload, Oid* oid,
                              std::string* class_name, std::string* state);

 private:
  /// Inserts `payload` into some page with room, allocating if needed.
  Result<RecordId> InsertRecord(const std::string& payload);

  /// Reads the record at `rid`.
  Status ReadRecord(const RecordId& rid, std::string* payload) const;

  /// Reassembles the committed image of `oid` from its chunks. Caller must
  /// hold mutex_.
  Status ReadObjectLocked(Oid oid, std::string* class_name,
                          std::string* state) const;

  /// Deletes every chunk of `oid` and drops its directory/extent entries.
  /// Caller must hold mutex_.
  Status EraseChunksLocked(Oid oid);

  /// Scans every heap page rebuilding directory_ and extents_.
  Status RebuildDirectory();

  /// Replays committed WAL transactions into the heap.
  Status Recover();

  /// Checkpoint body; caller holds checkpoint_mu_.
  Status CheckpointLocked();

  bool open_ = false;
  size_t buffer_pages_hint_ = 256;
  uint32_t group_commit_window_us_ = 0;
  CommitObserver* observer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::string dir_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  WalManager wal_;
  std::unique_ptr<GroupCommitSync> group_commit_;
  LockManager lock_manager_;
  std::unique_ptr<TransactionManager> txn_manager_;
  OidGenerator oids_;
  std::atomic<uint64_t> system_txn_seq_{0};  ///< SystemPut id allocator.

  /// Serializes whole checkpoints against each other and against Close —
  /// two interleaved capture/flush/truncate sequences could otherwise
  /// truncate twice against one captured LSN. `closing_` (set under the
  /// lock) fences late checkpoint callers off the teardown path.
  std::mutex checkpoint_mu_;
  bool closing_ = false;
  std::atomic<uint64_t> checkpoint_generation_{0};

  mutable std::mutex mutex_;  // Guards directory_, extents_, insert path.
  std::unordered_map<Oid, std::vector<RecordId>> directory_;
  std::unordered_map<std::string, std::set<Oid>> extents_;
  std::vector<PageId> data_pages_;  // Pages formatted as slotted pages.
};

}  // namespace sentinel

#endif  // SENTINEL_OODB_OBJECT_STORE_H_
