// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// AttributeIndex: associative access over class extents.
//
// Zeitgeist (and any adoptable OODB) offers more than fetch-by-Oid; rule
// conditions such as "is any employee paid more than the manager?" want
// value lookups over extents. An AttributeIndex maps
//
//     (class, attribute, value)  ->  committed Oids
//
// with equality and range queries. Indexes are declared per (class, attr),
// cover subclass extents optionally at query time (the caller decides via
// the catalog), and are maintained from committed object images only —
// uncommitted transactions never show up. Index *definitions* persist with
// the database; the entries themselves rebuild at open from the heap.
//
// Objects whose state was written by a custom serializer (not the default
// attribute map) are counted in unindexable_count() and skipped.

#ifndef SENTINEL_OODB_ATTRIBUTE_INDEX_H_
#define SENTINEL_OODB_ATTRIBUTE_INDEX_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"
#include "oodb/oid.h"

namespace sentinel {

/// Total order over Values for index keys: first by type rank, then by
/// value within the type (numerics compare cross-type by magnitude and get
/// one shared rank).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// One (class, attribute) index.
struct IndexSpec {
  std::string class_name;
  std::string attribute;

  bool operator<(const IndexSpec& o) const {
    return std::tie(class_name, attribute) <
           std::tie(o.class_name, o.attribute);
  }
  bool operator==(const IndexSpec&) const = default;
  std::string ToString() const { return class_name + "." + attribute; }
};

/// In-memory value indexes over committed objects. Thread safe.
class AttributeIndex {
 public:
  AttributeIndex() = default;
  AttributeIndex(const AttributeIndex&) = delete;
  AttributeIndex& operator=(const AttributeIndex&) = delete;

  // --- Definitions -----------------------------------------------------------

  /// Declares an index. AlreadyExists when declared twice. The caller is
  /// responsible for back-filling existing objects (Database does).
  Status CreateIndex(const IndexSpec& spec);

  Status DropIndex(const IndexSpec& spec);

  bool HasIndex(const IndexSpec& spec) const;
  std::vector<IndexSpec> Specs() const;

  // --- Maintenance (committed images only) ------------------------------------

  /// Installs/updates the index entries of one committed object. `state`
  /// is the serialized image; non-attribute-map images are skipped.
  void OnCommittedPut(Oid oid, const std::string& class_name,
                      const std::string& state);

  /// Drops all entries of a deleted object.
  void OnCommittedDelete(Oid oid);

  /// Drops all entries (e.g. before a rebuild).
  void Clear();

  // --- Queries ------------------------------------------------------------------

  /// Oids of class `spec.class_name` whose `spec.attribute` equals `value`
  /// (sorted). NotFound when no such index exists.
  Result<std::vector<Oid>> Lookup(const IndexSpec& spec,
                                  const Value& value) const;

  /// Oids with lo <= value <= hi (either bound may be null Value = open).
  Result<std::vector<Oid>> Range(const IndexSpec& spec, const Value& lo,
                                 const Value& hi) const;

  /// Distinct indexed values in order (for diagnostics/tests).
  Result<std::vector<Value>> Keys(const IndexSpec& spec) const;

  // --- Stats ----------------------------------------------------------------------

  uint64_t indexed_count() const { return indexed_; }
  uint64_t unindexable_count() const { return unindexable_; }

  // --- Definition persistence --------------------------------------------------------

  void EncodeSpecs(Encoder* enc) const;
  Status DecodeSpecs(Decoder* dec);

 private:
  struct OneIndex {
    std::map<Value, std::set<Oid>, ValueLess> entries;
  };

  /// Removes `oid` from every index it appears in. Caller holds mutex_.
  void EraseOidLocked(Oid oid);

  mutable std::mutex mutex_;
  std::map<IndexSpec, OneIndex> indexes_;
  // Reverse map for O(indexes) deletion: oid -> (spec, value) pairs.
  std::map<Oid, std::vector<std::pair<IndexSpec, Value>>> reverse_;
  uint64_t indexed_ = 0;
  uint64_t unindexable_ = 0;
};

}  // namespace sentinel

#endif  // SENTINEL_OODB_ATTRIBUTE_INDEX_H_
