// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

namespace sentinel {

namespace {
constexpr uint32_t kMagic = 0x534c5054;  // "SLPT"
}  // namespace

struct SlottedPage::Header {
  uint32_t magic;
  uint16_t slot_count;     // Directory entries, live or dead.
  uint16_t free_begin;     // First byte after the slot directory.
  uint16_t heap_begin;     // First byte of the record heap (grows down).
  uint16_t dead_bytes;     // Reclaimable bytes in the heap.
};

struct SlottedPage::Slot {
  uint16_t offset;  // Byte offset of the record; 0 means empty slot.
  uint16_t length;
};

SlottedPage::Header* SlottedPage::header() {
  return reinterpret_cast<Header*>(page_->data());
}

const SlottedPage::Header* SlottedPage::header() const {
  return reinterpret_cast<const Header*>(page_->data());
}

SlottedPage::Slot* SlottedPage::slots() {
  return reinterpret_cast<Slot*>(page_->data() + sizeof(Header));
}

const SlottedPage::Slot* SlottedPage::slots() const {
  return reinterpret_cast<const Slot*>(page_->data() + sizeof(Header));
}

void SlottedPage::Init() {
  std::memset(page_->data(), 0, kPageSize);
  Header* h = header();
  h->magic = kMagic;
  h->slot_count = 0;
  h->free_begin = sizeof(Header);
  h->heap_begin = kPageSize;
  h->dead_bytes = 0;
}

bool SlottedPage::IsInitialized() const { return header()->magic == kMagic; }

size_t SlottedPage::FreeSpace() const {
  const Header* h = header();
  size_t gap = h->heap_begin - h->free_begin;
  size_t need_slot = sizeof(Slot);
  size_t usable = gap + h->dead_bytes;
  return usable > need_slot ? usable - need_slot : 0;
}

uint16_t SlottedPage::SlotCount() const { return header()->slot_count; }

bool SlottedPage::IsLive(uint16_t slot) const {
  const Header* h = header();
  if (slot >= h->slot_count) return false;
  return slots()[slot].offset != 0;
}

size_t SlottedPage::MaxPayload() {
  return kPageSize - sizeof(Header) - sizeof(Slot);
}

void SlottedPage::Compact() {
  Header* h = header();
  // Collect live records, rewrite the heap from the top of the page down.
  struct LiveRec {
    uint16_t slot;
    std::string bytes;
  };
  std::vector<LiveRec> live;
  Slot* dir = slots();
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (dir[i].offset != 0) {
      live.push_back(
          {i, std::string(page_->data() + dir[i].offset, dir[i].length)});
    }
  }
  uint16_t cursor = kPageSize;
  for (const LiveRec& rec : live) {
    cursor = static_cast<uint16_t>(cursor - rec.bytes.size());
    std::memcpy(page_->data() + cursor, rec.bytes.data(), rec.bytes.size());
    dir[rec.slot].offset = cursor;
  }
  h->heap_begin = cursor;
  h->dead_bytes = 0;
}

Result<uint16_t> SlottedPage::Insert(const std::string& payload) {
  Header* h = header();
  if (payload.size() > MaxPayload()) {
    return Status::InvalidArgument("record too large for a page");
  }
  // Reuse a dead slot when possible; otherwise grow the directory.
  uint16_t slot = h->slot_count;
  bool reuse = false;
  Slot* dir = slots();
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (dir[i].offset == 0) {
      slot = i;
      reuse = true;
      break;
    }
  }
  size_t need = payload.size() + (reuse ? 0 : sizeof(Slot));
  size_t gap = h->heap_begin - h->free_begin;
  if (gap < need) {
    if (gap + h->dead_bytes < need) {
      return Status::NotFound("page full");
    }
    Compact();
    gap = header()->heap_begin - header()->free_begin;
    if (gap < need) return Status::NotFound("page full after compaction");
  }
  if (!reuse) {
    h->slot_count++;
    h->free_begin = static_cast<uint16_t>(h->free_begin + sizeof(Slot));
    dir = slots();
  }
  h->heap_begin = static_cast<uint16_t>(h->heap_begin - payload.size());
  std::memcpy(page_->data() + h->heap_begin, payload.data(), payload.size());
  dir[slot].offset = h->heap_begin;
  dir[slot].length = static_cast<uint16_t>(payload.size());
  return slot;
}

Status SlottedPage::Read(uint16_t slot, std::string* out) const {
  const Header* h = header();
  if (slot >= h->slot_count || slots()[slot].offset == 0) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  const Slot& s = slots()[slot];
  out->assign(page_->data() + s.offset, s.length);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, const std::string& payload) {
  Header* h = header();
  if (slot >= h->slot_count || slots()[slot].offset == 0) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  Slot* dir = slots();
  Slot& s = dir[slot];
  if (payload.size() <= s.length) {
    // Shrink in place; the tail bytes become dead.
    h->dead_bytes = static_cast<uint16_t>(h->dead_bytes +
                                          (s.length - payload.size()));
    std::memcpy(page_->data() + s.offset, payload.data(), payload.size());
    s.length = static_cast<uint16_t>(payload.size());
    return Status::OK();
  }
  // Grow: free the old bytes, then insert fresh bytes in the heap.
  size_t gap = h->heap_begin - h->free_begin;
  if (gap + h->dead_bytes + s.length < payload.size()) {
    return Status::FailedPrecondition("page cannot host grown record");
  }
  h->dead_bytes = static_cast<uint16_t>(h->dead_bytes + s.length);
  s.offset = 0;  // Mark dead so Compact drops the old image.
  if (gap < payload.size()) {
    Compact();
    h = header();
    dir = slots();
  }
  h->heap_begin = static_cast<uint16_t>(h->heap_begin - payload.size());
  std::memcpy(page_->data() + h->heap_begin, payload.data(), payload.size());
  dir[slot].offset = h->heap_begin;
  dir[slot].length = static_cast<uint16_t>(payload.size());
  return Status::OK();
}

Status SlottedPage::Delete(uint16_t slot) {
  Header* h = header();
  if (slot >= h->slot_count || slots()[slot].offset == 0) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  Slot& s = slots()[slot];
  h->dead_bytes = static_cast<uint16_t>(h->dead_bytes + s.length);
  s.offset = 0;
  s.length = 0;
  return Status::OK();
}

}  // namespace sentinel
