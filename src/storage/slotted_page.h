// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Classic slotted-page layout for variable-length records.
//
//   [ header | slot directory --> ... free ... <-- record heap ]
//
// Records are addressed by (page, slot) RecordIds. Deleting a record frees
// its slot for reuse; updating in place is allowed when the new payload fits,
// otherwise the record is moved within the page (the slot id is stable).

#ifndef SENTINEL_STORAGE_SLOTTED_PAGE_H_
#define SENTINEL_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace sentinel {

/// Stable address of a record: page number plus slot index.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const RecordId&) const = default;
  std::string ToString() const {
    return "rid{" + std::to_string(page_id) + "," + std::to_string(slot) +
           "}";
  }
};

/// View over a Page's bytes interpreted as a slotted page. Does not own the
/// page. The caller is responsible for pinning and latching.
class SlottedPage {
 public:
  /// Wraps `page` without touching its bytes.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats the underlying page as an empty slotted page.
  void Init();

  /// True if the page carries the slotted-page magic (i.e. Init was called
  /// on it at some point).
  bool IsInitialized() const;

  /// Inserts `payload`; returns the slot index, or kBusy-like NotFound when
  /// the page lacks space.
  Result<uint16_t> Insert(const std::string& payload);

  /// Reads the record in `slot` into `out`.
  Status Read(uint16_t slot, std::string* out) const;

  /// Replaces the record in `slot`. Fails with NotFound for empty slots and
  /// with FailedPrecondition when the page cannot host the new size.
  Status Update(uint16_t slot, const std::string& payload);

  /// Frees `slot`. Idempotent errors: NotFound for never-used/empty slots.
  Status Delete(uint16_t slot);

  /// Bytes available for a new record (accounting for its slot entry).
  size_t FreeSpace() const;

  /// Number of directory entries (including freed ones).
  uint16_t SlotCount() const;

  /// True if `slot` currently holds a record.
  bool IsLive(uint16_t slot) const;

  /// Largest payload a freshly Init'ed page can host.
  static size_t MaxPayload();

 private:
  struct Header;
  struct Slot;

  Header* header();
  const Header* header() const;
  Slot* slots();
  const Slot* slots() const;

  /// Rewrites the record heap dropping dead bytes, to make room.
  void Compact();

  Page* page_;
};

}  // namespace sentinel

#endif  // SENTINEL_STORAGE_SLOTTED_PAGE_H_
