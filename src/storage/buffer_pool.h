// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// LRU buffer pool over a DiskManager. Pages are pinned while in use and
// written back lazily on eviction (plus FlushAll at checkpoints/close).

#ifndef SENTINEL_STORAGE_BUFFER_POOL_H_
#define SENTINEL_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sentinel {

/// Caches disk pages in a fixed set of frames with LRU replacement.
///
/// Thread safe. A pinned page's frame is never evicted; callers must balance
/// each Fetch/Allocate with an Unpin.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the page pinned; loads from disk on miss, evicting an unpinned
  /// LRU frame if needed. Fails with Busy when every frame is pinned.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a fresh page on disk and returns it pinned.
  Result<Page*> AllocatePage();

  /// Drops a pin; `dirty` marks the frame as needing write-back.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes one page through to disk (it stays cached).
  Status FlushPage(PageId page_id);

  /// Writes all dirty frames to disk and syncs the file.
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }

  /// Observability counters for benchmarks.
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

  /// Mirrors hit/miss counts into storage.pool.hits / storage.pool.misses.
  void SetMetrics(MetricsRegistry* registry) {
    m_hits_ = registry->counter("storage.pool.hits");
    m_misses_ = registry->counter("storage.pool.misses");
  }

 private:
  /// Picks a victim frame (unpinned LRU) or returns Busy.
  Result<size_t> FindVictim();

  DiskManager* disk_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;  // page id -> frame index
  std::list<size_t> lru_;                          // front = least recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_STORAGE_BUFFER_POOL_H_
