// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Fixed-size page frame shared by the disk manager and the buffer pool.

#ifndef SENTINEL_STORAGE_PAGE_H_
#define SENTINEL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace sentinel {

/// Page size in bytes. 4 KiB matches common filesystem blocks.
constexpr size_t kPageSize = 4096;

/// Logical page number within a database file. Page 0 is the file header.
using PageId = uint32_t;

/// Sentinel value for "no page".
constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// In-memory image of one disk page plus buffer-pool bookkeeping.
///
/// Page does not know its own format; SlottedPage (and the header/catalog
/// pages) interpret data(). The pin count and dirty flag are manipulated only
/// by the BufferPool under its latch.
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return dirty_; }

  /// Clears the frame for reuse by a different page.
  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    dirty_ = false;
  }

 private:
  friend class BufferPool;

  char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
};

}  // namespace sentinel

#endif  // SENTINEL_STORAGE_PAGE_H_
