// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "storage/disk_manager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace sentinel {

DiskManager::~DiskManager() { Close().ok(); }

Status DiskManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("disk manager already open");
  }
  // "a+" creates the file when missing, then reopen in r+b for random access.
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  std::fclose(probe);
  file_ = std::fopen(path.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed on " + path);
  }
  long size = std::ftell(file_);
  if (size < 0) return Status::IOError("ftell failed on " + path);
  if (size % static_cast<long>(kPageSize) != 0) {
    return Status::Corruption(path + " size is not page-aligned");
  }
  page_count_ = static_cast<uint32_t>(size / kPageSize);
  return Status::OK();
}

Status DiskManager::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  if (FailPoints::AnyActive() && FailPoints::Instance().crashed()) {
    // Simulated crash: the process never got to flush. Closing the
    // underlying descriptor first makes fclose's implicit flush fail, so
    // buffered-but-unsynced page writes are genuinely lost.
    ::close(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
    return Status::OK();
  }
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  SENTINEL_FAILPOINT("disk.allocate_page");
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  PageId id = page_count_;
  char zeros[kPageSize] = {};
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zeros, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("allocate page " + std::to_string(id) + " failed");
  }
  ++page_count_;
  return id;
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  if (page_id >= page_count_) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(page_id));
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
          0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("read page " + std::to_string(page_id) +
                           " failed");
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  SENTINEL_FAILPOINT("disk.write_page");
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  if (page_id >= page_count_) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(page_id));
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
          0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("write page " + std::to_string(page_id) +
                           " failed");
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  SENTINEL_FAILPOINT("disk.sync");
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

uint32_t DiskManager::page_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_count_;
}

}  // namespace sentinel
