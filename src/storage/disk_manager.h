// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// File-backed page store. One DiskManager owns one database file; pages are
// read and written whole. Thread safe (a single mutex serializes I/O, which
// is adequate at Sentinel's scale).

#ifndef SENTINEL_STORAGE_DISK_MANAGER_H_
#define SENTINEL_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace sentinel {

/// Allocates, reads, and writes fixed-size pages in a single file.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if absent) the database file at `path`.
  Status Open(const std::string& path);

  /// Flushes and closes the file. Idempotent.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

  /// Appends a zeroed page to the file and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `page_id` into `out` (exactly kPageSize bytes).
  Status ReadPage(PageId page_id, char* out);

  /// Writes kPageSize bytes from `data` to page `page_id`.
  Status WritePage(PageId page_id, const char* data);

  /// Forces buffered writes to the OS.
  Status Sync();

  /// Number of pages currently allocated in the file.
  uint32_t page_count() const;

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t page_count_ = 0;
};

}  // namespace sentinel

#endif  // SENTINEL_STORAGE_DISK_MANAGER_H_
