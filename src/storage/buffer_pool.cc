// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "storage/buffer_pool.h"

#include <cassert>

#include "common/failpoint.h"

namespace sentinel {

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk) {
  assert(capacity > 0);
  frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(capacity - 1 - i);
  }
}

Result<size_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    size_t frame = *it;
    if (frames_[frame]->pin_count() == 0) {
      lru_.erase(it);
      lru_pos_.erase(frame);
      return frame;
    }
  }
  return Status::Busy("all buffer frames pinned");
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++hits_;
    metrics::Add(m_hits_);
    size_t frame = it->second;
    Page* page = frames_[frame].get();
    page->pin_count_++;
    // Refresh LRU position.
    auto pos = lru_pos_.find(frame);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    lru_.push_back(frame);
    lru_pos_[frame] = std::prev(lru_.end());
    return page;
  }
  ++misses_;
  metrics::Add(m_misses_);
  SENTINEL_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Page* page = frames_[frame].get();
  if (page->page_id() != kInvalidPageId) {
    if (page->is_dirty()) {
      SENTINEL_RETURN_IF_ERROR(disk_->WritePage(page->page_id(),
                                                page->data()));
    }
    page_table_.erase(page->page_id());
  }
  page->Reset();
  Status s = disk_->ReadPage(page_id, page->data());
  if (!s.ok()) {
    free_frames_.push_back(frame);
    return s;
  }
  page->page_id_ = page_id;
  page->pin_count_ = 1;
  page_table_[page_id] = frame;
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
  return page;
}

Result<Page*> BufferPool::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  SENTINEL_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  SENTINEL_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Page* page = frames_[frame].get();
  if (page->page_id() != kInvalidPageId) {
    if (page->is_dirty()) {
      SENTINEL_RETURN_IF_ERROR(disk_->WritePage(page->page_id(),
                                                page->data()));
    }
    page_table_.erase(page->page_id());
  }
  page->Reset();
  page->page_id_ = page_id;
  page->pin_count_ = 1;
  page_table_[page_id] = frame;
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of uncached page " +
                            std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count_ <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page " +
                                      std::to_string(page_id));
  }
  page->pin_count_--;
  if (dirty) page->dirty_ = true;
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of uncached page " +
                            std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  SENTINEL_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data()));
  page->dirty_ = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  SENTINEL_FAILPOINT("bufferpool.flush_all");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->is_dirty()) {
      SENTINEL_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data()));
      page->dirty_ = false;
    }
  }
  return disk_->Sync();
}

}  // namespace sentinel
