// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Page is header-only; this translation unit anchors the header in the build
// so include hygiene is checked even before any .cc user exists.

#include "storage/page.h"

namespace sentinel {

static_assert(kPageSize % 512 == 0, "pages must be disk-sector aligned");

}  // namespace sentinel
