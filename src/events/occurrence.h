// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// EventOccurrence: one generated primitive event. The paper §3.1:
//
//   Generated primitive event =
//       Oid + Class + Method + Actual parameters + Time stamp
//
// plus (from §4.1's Notify) the begin/end shade. We additionally carry the
// triggering transaction (not persisted) so rule execution can honor the
// coupling mode relative to the right transaction.

#ifndef SENTINEL_EVENTS_OCCURRENCE_H_
#define SENTINEL_EVENTS_OCCURRENCE_H_

#include <string>

#include "common/clock.h"
#include "common/value.h"
#include "events/signature.h"
#include "oodb/oid.h"

namespace sentinel {

class Transaction;

/// One raised primitive event, as propagated from a reactive object to its
/// subscribed notifiable consumers.
struct EventOccurrence {
  Oid oid = kInvalidOid;          ///< Identity of the generating object.
  std::string class_name;         ///< Its class.
  std::string method;             ///< The invoked method.
  EventModifier modifier = EventModifier::kEnd;  ///< bom or eom.
  ValueList params;               ///< Actual arguments of the invocation.
  Timestamp timestamp;            ///< When the event was generated.
  Transaction* txn = nullptr;     ///< Triggering transaction (may be null).

  /// Matching key "end Class::Method".
  std::string Key() const { return EventKey(modifier, class_name, method); }

  /// Human-readable rendering for logs and test diagnostics.
  std::string ToString() const;
};

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_OCCURRENCE_H_
