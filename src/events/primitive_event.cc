// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/primitive_event.h"

#include "oodb/class_catalog.h"

namespace sentinel {

PrimitiveEvent::PrimitiveEvent(EventSignature signature)
    : Event("PrimitiveEvent"), signature_(std::move(signature)) {}

Result<std::shared_ptr<PrimitiveEvent>> PrimitiveEvent::Create(
    const std::string& signature_text, const ClassCatalog* catalog) {
  SENTINEL_ASSIGN_OR_RETURN(EventSignature sig,
                            EventSignature::Parse(signature_text));
  if (catalog != nullptr) {
    if (!catalog->HasClass(sig.class_name)) {
      return Status::InvalidArgument("event on unknown class " +
                                     sig.class_name);
    }
    if (!catalog->IsReactive(sig.class_name)) {
      return Status::InvalidArgument("class " + sig.class_name +
                                     " is not reactive");
    }
    EventSpec spec = catalog->EventSpecFor(sig.class_name, sig.method);
    bool designated = sig.modifier == EventModifier::kBegin ? spec.begin
                                                            : spec.end;
    if (!designated) {
      return Status::InvalidArgument(
          "method " + sig.class_name + "::" + sig.method +
          " is not designated as a '" + ToString(sig.modifier) +
          "' event generator in the event interface");
    }
  }
  auto event = std::make_shared<PrimitiveEvent>(std::move(sig));
  event->catalog_ = catalog;
  return event;
}

bool PrimitiveEvent::Matches(const EventOccurrence& occ) const {
  if (occ.modifier != signature_.modifier) return false;
  if (occ.method != signature_.method) return false;
  if (instance_filter_ != kInvalidOid && occ.oid != instance_filter_) {
    return false;
  }
  if (occ.class_name == signature_.class_name) return true;
  if (exact_class_) return false;
  // Subclass instances raise the superclass's designated events.
  return catalog_ != nullptr &&
         catalog_->IsSubclassOf(occ.class_name, signature_.class_name);
}

void PrimitiveEvent::ConsumePrimitive(const EventOccurrence& occ) {
  // A leaf shared by several rules may be fed the same occurrence once per
  // subscribing rule; signal it only once.
  if (occ.timestamp.seq != 0 && occ.timestamp.seq == last_consumed_seq_) {
    return;
  }
  if (!Matches(occ)) return;
  last_consumed_seq_ = occ.timestamp.seq;
  Signal(EventDetection::FromOccurrence(occ));
}

std::string PrimitiveEvent::Describe() const { return signature_.Key(); }

void PrimitiveEvent::SerializeState(Encoder* enc) const {
  enc->PutString(signature_.ToString());
  enc->PutU64(instance_filter_);
  enc->PutBool(exact_class_);
}

Status PrimitiveEvent::DeserializeState(Decoder* dec) {
  std::string text;
  SENTINEL_RETURN_IF_ERROR(dec->GetString(&text));
  SENTINEL_ASSIGN_OR_RETURN(signature_, EventSignature::Parse(text));
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&instance_filter_));
  SENTINEL_RETURN_IF_ERROR(dec->GetBool(&exact_class_));
  InvalidateGraphCaches();  // The routing key may have changed.
  return Status::OK();
}

}  // namespace sentinel
