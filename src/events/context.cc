// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/context.h"

#include <algorithm>

namespace sentinel {

const char* ToString(ParameterContext context) {
  switch (context) {
    case ParameterContext::kRecent:
      return "recent";
    case ParameterContext::kChronicle:
      return "chronicle";
    case ParameterContext::kContinuous:
      return "continuous";
    case ParameterContext::kCumulative:
      return "cumulative";
  }
  return "?";
}

void PairingBuffer::AddInitiator(const EventDetection& det) {
  if (context_ == ParameterContext::kRecent) {
    // Only the most recent initiator can start a future detection.
    pending_.clear();
  }
  pending_.push_back(det);
}

std::vector<std::vector<EventDetection>> PairingBuffer::PairWithTerminator(
    const EventDetection& terminator,
    const std::function<bool(const EventDetection&)>& eligible) {
  std::vector<std::vector<EventDetection>> groups;

  // Indices of eligible pending initiators, oldest first.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!eligible || eligible(pending_[i])) candidates.push_back(i);
  }
  if (candidates.empty()) {
    (void)terminator;
    return groups;
  }

  switch (context_) {
    case ParameterContext::kRecent: {
      // Pair with the newest eligible initiator; keep it for reuse.
      size_t idx = candidates.back();
      groups.push_back({pending_[idx]});
      break;
    }
    case ParameterContext::kChronicle: {
      // Pair with the oldest eligible initiator; consume it.
      size_t idx = candidates.front();
      groups.push_back({pending_[idx]});
      pending_.erase(pending_.begin() + static_cast<long>(idx));
      break;
    }
    case ParameterContext::kContinuous: {
      // One detection per open window; consume all of them.
      for (size_t idx : candidates) groups.push_back({pending_[idx]});
      for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
        pending_.erase(pending_.begin() + static_cast<long>(*it));
      }
      break;
    }
    case ParameterContext::kCumulative: {
      // All pending initiators merge into one detection; consume all.
      std::vector<EventDetection> merged;
      for (size_t idx : candidates) merged.push_back(pending_[idx]);
      groups.push_back(std::move(merged));
      for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
        pending_.erase(pending_.begin() + static_cast<long>(*it));
      }
      break;
    }
  }
  return groups;
}

}  // namespace sentinel
