// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/event.h"

#include <algorithm>

namespace sentinel {

EventDetection EventDetection::FromOccurrence(const EventOccurrence& occ) {
  EventDetection det;
  det.constituents.push_back(occ);
  det.start_ts = occ.timestamp;
  det.end_ts = occ.timestamp;
  det.txn = occ.txn;
  return det;
}

EventDetection EventDetection::Merge(
    const std::vector<EventDetection>& parts) {
  EventDetection out;
  for (const EventDetection& part : parts) {
    out.constituents.insert(out.constituents.end(),
                            part.constituents.begin(),
                            part.constituents.end());
  }
  std::sort(out.constituents.begin(), out.constituents.end(),
            [](const EventOccurrence& a, const EventOccurrence& b) {
              return a.timestamp < b.timestamp;
            });
  if (!out.constituents.empty()) {
    out.start_ts = out.constituents.front().timestamp;
    out.end_ts = out.constituents.back().timestamp;
    out.txn = out.constituents.back().txn;
  }
  return out;
}

std::string EventDetection::ToString() const {
  std::string s = "detection[";
  for (size_t i = 0; i < constituents.size(); ++i) {
    if (i > 0) s += "; ";
    s += constituents[i].ToString();
  }
  s += "]";
  return s;
}

Event::Event(std::string event_class)
    : PersistentObject(std::move(event_class)) {}

Event::~Event() = default;

void Event::AddListener(EventListener* listener) {
  if (std::find(listeners_.begin(), listeners_.end(), listener) ==
      listeners_.end()) {
    listeners_.push_back(listener);
  }
}

void Event::RemoveListener(EventListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void Event::CollectLeaves(std::vector<Event*>* leaves,
                          std::vector<const Event*>* visited) {
  if (std::find(visited->begin(), visited->end(), this) != visited->end()) {
    return;
  }
  visited->push_back(this);
  std::vector<Event*> children = Children();
  if (children.empty()) {
    leaves->push_back(this);
    return;
  }
  for (Event* child : children) child->CollectLeaves(leaves, visited);
}

std::atomic<uint64_t> Event::graph_epoch_{1};
std::atomic<EventRouting> Event::routing_{EventRouting::kIndexed};

void Event::SetRouting(EventRouting routing) { routing_.store(routing); }

EventRouting Event::routing() {
  return routing_.load(std::memory_order_relaxed);
}

void Event::InvalidateGraphCaches() {
  graph_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Event::RefreshLeafIndex() {
  uint64_t epoch = graph_epoch_.load(std::memory_order_relaxed);
  if (index_epoch_ == epoch) return;
  leaf_index_.clear();
  std::vector<Event*> leaves;
  std::vector<const Event*> visited;
  CollectLeaves(&leaves, &visited);
  for (Event* leaf : leaves) {
    std::string key = leaf->RoutingKey();
    if (!key.empty()) leaf_index_[key].push_back(leaf);
  }
  index_epoch_ = epoch;
}

void Event::Notify(const EventOccurrence& occ) {
  Record(occ);
  if (routing() == EventRouting::kIndexed) {
    RefreshLeafIndex();
    std::string key = ToString(occ.modifier);
    key += ' ';
    key += occ.method;
    auto it = leaf_index_.find(key);
    if (it == leaf_index_.end()) return;
    // Snapshot: a consumed occurrence may cascade into graph edits.
    std::vector<Event*> targets = it->second;
    for (Event* leaf : targets) leaf->ConsumePrimitive(occ);
    return;
  }
  std::vector<Event*> leaves;
  std::vector<const Event*> visited;
  CollectLeaves(&leaves, &visited);
  for (Event* leaf : leaves) leaf->ConsumePrimitive(occ);
}

void Event::AdvanceTime(const Timestamp& now) {
  for (Event* child : Children()) child->AdvanceTime(now);
}

void Event::ResetState() {
  for (Event* child : Children()) child->ResetState();
}

void Event::ConsumePrimitive(const EventOccurrence& occ) { (void)occ; }

void Event::Signal(const EventDetection& det) {
  ++signal_count_;
  last_detection_ = det;
  // Snapshot: listeners may unsubscribe (or subscribe others) during
  // delivery.
  std::vector<EventListener*> snapshot = listeners_;
  for (EventListener* listener : snapshot) {
    // Skip listeners removed by earlier callbacks in this round.
    if (std::find(listeners_.begin(), listeners_.end(), listener) ==
        listeners_.end()) {
      continue;
    }
    listener->OnEvent(this, det);
  }
}

}  // namespace sentinel
