// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/operators.h"

namespace sentinel {

namespace {

/// True when two detections share any constituent occurrence (by the
/// process-unique timestamp sequence) — used to prevent an occurrence from
/// pairing with itself in same-child operators like And(E, E).
bool SharesOccurrence(const EventDetection& a, const EventDetection& b) {
  for (const EventOccurrence& x : a.constituents) {
    for (const EventOccurrence& y : b.constituents) {
      if (x.timestamp.seq == y.timestamp.seq) return true;
    }
  }
  return false;
}

}  // namespace

BinaryEvent::BinaryEvent(std::string event_class, EventPtr left,
                         EventPtr right, ParameterContext context)
    : Event(std::move(event_class)), context_(context) {
  SetChildren(std::move(left), std::move(right));
}

BinaryEvent::~BinaryEvent() {
  if (left_) left_->RemoveListener(this);
  if (right_) right_->RemoveListener(this);
}

void BinaryEvent::SetChildren(EventPtr left, EventPtr right) {
  if (left_) left_->RemoveListener(this);
  if (right_) right_->RemoveListener(this);
  left_ = std::move(left);
  right_ = std::move(right);
  if (left_) left_->AddListener(this);
  if (right_) right_->AddListener(this);
  InvalidateGraphCaches();
}

std::vector<Event*> BinaryEvent::Children() const {
  std::vector<Event*> out;
  if (left_) out.push_back(left_.get());
  if (right_) out.push_back(right_.get());
  return out;
}

void BinaryEvent::OnEvent(Event* source, const EventDetection& det) {
  // A child may be both left and right (e.g. And(E, E)); deliver to the
  // matching side(s).
  if (source == left_.get()) OnLeft(det);
  if (source == right_.get() && left_.get() != right_.get()) OnRight(det);
}

void BinaryEvent::SerializeState(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(context_));
  enc->PutU64(left_ ? left_->oid() : kInvalidOid);
  enc->PutU64(right_ ? right_->oid() : kInvalidOid);
}

Status BinaryEvent::DeserializeState(Decoder* dec) {
  uint8_t ctx;
  SENTINEL_RETURN_IF_ERROR(dec->GetU8(&ctx));
  if (ctx > static_cast<uint8_t>(ParameterContext::kCumulative)) {
    return Status::Corruption("bad parameter context tag");
  }
  context_ = static_cast<ParameterContext>(ctx);
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&persisted_left_));
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&persisted_right_));
  return Status::OK();
}

// --- Conjunction -----------------------------------------------------------

Conjunction::Conjunction(EventPtr left, EventPtr right,
                         ParameterContext context)
    : BinaryEvent("Conjunction", std::move(left), std::move(right), context),
      left_buffer_(context),
      right_buffer_(context) {}

void Conjunction::OnSide(PairingBuffer* mine, PairingBuffer* other,
                         const EventDetection& det) {
  auto groups = other->PairWithTerminator(det, nullptr);
  if (groups.empty()) {
    mine->AddInitiator(det);
    return;
  }
  for (auto& group : groups) {
    group.push_back(det);
    Signal(EventDetection::Merge(group));
  }
  if (context_ == ParameterContext::kRecent) {
    // Recent reuses the latest constituent of each side.
    mine->AddInitiator(det);
  }
}

void Conjunction::OnLeft(const EventDetection& det) {
  if (left() == right()) {
    // And(E, E): two distinct occurrences of E, any order. An occurrence
    // must not pair with itself.
    auto groups = left_buffer_.PairWithTerminator(
        det, [&det](const EventDetection& init) {
          return !SharesOccurrence(init, det);
        });
    if (groups.empty()) {
      left_buffer_.AddInitiator(det);
      return;
    }
    for (auto& group : groups) {
      group.push_back(det);
      Signal(EventDetection::Merge(group));
    }
    if (context_ == ParameterContext::kRecent) left_buffer_.AddInitiator(det);
    return;
  }
  OnSide(&left_buffer_, &right_buffer_, det);
}

void Conjunction::OnRight(const EventDetection& det) {
  OnSide(&right_buffer_, &left_buffer_, det);
}

void Conjunction::ResetState() {
  left_buffer_.Clear();
  right_buffer_.Clear();
  Event::ResetState();
}

std::string Conjunction::Describe() const {
  return "And(" + (left() ? left()->Describe() : "?") + ", " +
         (right() ? right()->Describe() : "?") + ")";
}

// --- Disjunction -----------------------------------------------------------

Disjunction::Disjunction(EventPtr left, EventPtr right,
                         ParameterContext context)
    : BinaryEvent("Disjunction", std::move(left), std::move(right), context) {
}

void Disjunction::OnLeft(const EventDetection& det) { Signal(det); }

void Disjunction::OnRight(const EventDetection& det) { Signal(det); }

std::string Disjunction::Describe() const {
  return "Or(" + (left() ? left()->Describe() : "?") + ", " +
         (right() ? right()->Describe() : "?") + ")";
}

// --- Sequence ---------------------------------------------------------------

Sequence::Sequence(EventPtr left, EventPtr right, ParameterContext context)
    : BinaryEvent("Sequence", std::move(left), std::move(right), context),
      initiators_(context) {}

void Sequence::OnLeft(const EventDetection& det) {
  if (left() == right()) {
    // Seq(E, E): a strictly earlier occurrence followed by a later one.
    auto groups = initiators_.PairWithTerminator(
        det, [&det](const EventDetection& init) {
          return init.end_ts < det.end_ts && !SharesOccurrence(init, det);
        });
    for (auto& group : groups) {
      group.push_back(det);
      Signal(EventDetection::Merge(group));
    }
    initiators_.AddInitiator(det);  // Every occurrence can start a new pair.
    return;
  }
  initiators_.AddInitiator(det);
}

void Sequence::OnRight(const EventDetection& det) {
  // "E is signaled when the last component of E2 occurs provided all the
  // components of E1 have occurred" (§4.3): the initiator detection must be
  // complete before the terminator completes.
  auto groups = initiators_.PairWithTerminator(
      det, [&det](const EventDetection& init) {
        return init.end_ts < det.end_ts;
      });
  for (auto& group : groups) {
    group.push_back(det);
    Signal(EventDetection::Merge(group));
  }
}

void Sequence::ResetState() {
  initiators_.Clear();
  Event::ResetState();
}

std::string Sequence::Describe() const {
  return "Seq(" + (left() ? left()->Describe() : "?") + ", " +
         (right() ? right()->Describe() : "?") + ")";
}

// --- Builders ----------------------------------------------------------------

EventPtr And(EventPtr left, EventPtr right, ParameterContext context) {
  return std::make_shared<Conjunction>(std::move(left), std::move(right),
                                       context);
}

EventPtr Or(EventPtr left, EventPtr right, ParameterContext context) {
  return std::make_shared<Disjunction>(std::move(left), std::move(right),
                                       context);
}

EventPtr Seq(EventPtr left, EventPtr right, ParameterContext context) {
  return std::make_shared<Sequence>(std::move(left), std::move(right),
                                    context);
}

}  // namespace sentinel
