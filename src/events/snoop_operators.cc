// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/snoop_operators.h"

#include <algorithm>

namespace sentinel {

namespace {

/// Synthesizes the occurrence carried by timer-driven detections.
EventOccurrence TimerOccurrence(int64_t fire_micros) {
  EventOccurrence occ;
  occ.class_name = "__timer__";
  occ.method = "Fire";
  occ.modifier = EventModifier::kEnd;
  occ.timestamp = Clock::Now();
  occ.timestamp.micros = fire_micros;
  return occ;
}

}  // namespace

// --- AnyEvent ----------------------------------------------------------------

AnyEvent::AnyEvent(size_t m, std::vector<EventPtr> children)
    : Event("AnyEvent"), m_(m) {
  SetChildrenList(std::move(children));
}

AnyEvent::~AnyEvent() {
  for (const EventPtr& child : children_) child->RemoveListener(this);
}

void AnyEvent::SetChildrenList(std::vector<EventPtr> children) {
  for (const EventPtr& child : children_) child->RemoveListener(this);
  children_ = std::move(children);
  pending_.assign(children_.size(), {});
  for (const EventPtr& child : children_) child->AddListener(this);
  InvalidateGraphCaches();
}

std::vector<Event*> AnyEvent::Children() const {
  std::vector<Event*> out;
  out.reserve(children_.size());
  for (const EventPtr& child : children_) out.push_back(child.get());
  return out;
}

void AnyEvent::OnEvent(Event* source, const EventDetection& det) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == source) {
      pending_[i].push_back(det);
      break;  // A child appears once in the list.
    }
  }
  // Count children with a pending detection.
  std::vector<size_t> ready;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!pending_[i].empty()) ready.push_back(i);
  }
  if (ready.size() < m_) return;
  // Signal with the oldest pending detection of the m earliest-ready
  // children, consuming them (Chronicle-style).
  std::sort(ready.begin(), ready.end(), [this](size_t a, size_t b) {
    return pending_[a].front().end_ts < pending_[b].front().end_ts;
  });
  std::vector<EventDetection> parts;
  for (size_t k = 0; k < m_; ++k) {
    size_t idx = ready[k];
    parts.push_back(pending_[idx].front());
    pending_[idx].pop_front();
  }
  Signal(EventDetection::Merge(parts));
}

void AnyEvent::ResetState() {
  for (auto& q : pending_) q.clear();
  Event::ResetState();
}

std::string AnyEvent::Describe() const {
  std::string s = "Any(" + std::to_string(m_);
  for (const EventPtr& child : children_) s += ", " + child->Describe();
  return s + ")";
}

void AnyEvent::SerializeState(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(m_));
  enc->PutU32(static_cast<uint32_t>(children_.size()));
  for (const EventPtr& child : children_) enc->PutU64(child->oid());
}

Status AnyEvent::DeserializeState(Decoder* dec) {
  uint32_t m, n;
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&m));
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&n));
  m_ = m;
  persisted_children_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    Oid oid;
    SENTINEL_RETURN_IF_ERROR(dec->GetU64(&oid));
    persisted_children_.push_back(oid);
  }
  return Status::OK();
}

// --- NotEvent ----------------------------------------------------------------

NotEvent::NotEvent(EventPtr start, EventPtr forbidden, EventPtr finish,
                   ParameterContext context)
    : Event("NotEvent"), initiators_(context) {
  SetChildrenList({std::move(start), std::move(forbidden), std::move(finish)});
}

NotEvent::~NotEvent() { Detach(); }

void NotEvent::Detach() {
  if (start_) start_->RemoveListener(this);
  if (forbidden_) forbidden_->RemoveListener(this);
  if (finish_) finish_->RemoveListener(this);
}

void NotEvent::SetChildrenList(std::vector<EventPtr> children) {
  Detach();
  start_ = children.size() > 0 ? std::move(children[0]) : nullptr;
  forbidden_ = children.size() > 1 ? std::move(children[1]) : nullptr;
  finish_ = children.size() > 2 ? std::move(children[2]) : nullptr;
  if (start_) start_->AddListener(this);
  if (forbidden_) forbidden_->AddListener(this);
  if (finish_) finish_->AddListener(this);
  InvalidateGraphCaches();
}

void NotEvent::SerializeState(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(initiators_.context()));
  enc->PutU64(start_ ? start_->oid() : kInvalidOid);
  enc->PutU64(forbidden_ ? forbidden_->oid() : kInvalidOid);
  enc->PutU64(finish_ ? finish_->oid() : kInvalidOid);
}

Status NotEvent::DeserializeState(Decoder* dec) {
  uint8_t ctx;
  SENTINEL_RETURN_IF_ERROR(dec->GetU8(&ctx));
  if (ctx > static_cast<uint8_t>(ParameterContext::kCumulative)) {
    return Status::Corruption("bad parameter context tag");
  }
  initiators_ = PairingBuffer(static_cast<ParameterContext>(ctx));
  persisted_children_.assign(3, kInvalidOid);
  for (Oid& oid : persisted_children_) {
    SENTINEL_RETURN_IF_ERROR(dec->GetU64(&oid));
  }
  return Status::OK();
}

std::vector<Event*> NotEvent::Children() const {
  std::vector<Event*> out;
  if (start_) out.push_back(start_.get());
  if (forbidden_) out.push_back(forbidden_.get());
  if (finish_) out.push_back(finish_.get());
  return out;
}

void NotEvent::OnEvent(Event* source, const EventDetection& det) {
  if (source == start_.get()) {
    initiators_.AddInitiator(det);
    return;
  }
  if (source == forbidden_.get()) {
    // An occurrence of E2 kills every window it falls inside: any initiator
    // already complete when E2 completed can no longer detect.
    std::deque<EventDetection> survivors;
    for (const EventDetection& init : initiators_.pending()) {
      if (!(init.end_ts < det.end_ts)) survivors.push_back(init);
    }
    initiators_.Clear();
    for (const EventDetection& s : survivors) initiators_.AddInitiator(s);
    return;
  }
  if (source == finish_.get()) {
    auto groups = initiators_.PairWithTerminator(
        det, [&det](const EventDetection& init) {
          return init.end_ts < det.end_ts;
        });
    for (auto& group : groups) {
      group.push_back(det);
      Signal(EventDetection::Merge(group));
    }
  }
}

void NotEvent::ResetState() {
  initiators_.Clear();
  Event::ResetState();
}

std::string NotEvent::Describe() const {
  return "Not(" + start_->Describe() + ", !" + forbidden_->Describe() +
         ", " + finish_->Describe() + ")";
}

// --- AperiodicEvent ------------------------------------------------------------

AperiodicEvent::AperiodicEvent(EventPtr opener, EventPtr tracked,
                               EventPtr closer)
    : Event("AperiodicEvent") {
  SetChildrenList({std::move(opener), std::move(tracked), std::move(closer)});
}

AperiodicEvent::~AperiodicEvent() { Detach(); }

void AperiodicEvent::Detach() {
  if (opener_) opener_->RemoveListener(this);
  if (tracked_) tracked_->RemoveListener(this);
  if (closer_) closer_->RemoveListener(this);
}

void AperiodicEvent::SetChildrenList(std::vector<EventPtr> children) {
  Detach();
  opener_ = children.size() > 0 ? std::move(children[0]) : nullptr;
  tracked_ = children.size() > 1 ? std::move(children[1]) : nullptr;
  closer_ = children.size() > 2 ? std::move(children[2]) : nullptr;
  if (opener_) opener_->AddListener(this);
  if (tracked_) tracked_->AddListener(this);
  if (closer_) closer_->AddListener(this);
  InvalidateGraphCaches();
}

void AperiodicEvent::SerializeState(Encoder* enc) const {
  enc->PutU64(opener_ ? opener_->oid() : kInvalidOid);
  enc->PutU64(tracked_ ? tracked_->oid() : kInvalidOid);
  enc->PutU64(closer_ ? closer_->oid() : kInvalidOid);
}

Status AperiodicEvent::DeserializeState(Decoder* dec) {
  persisted_children_.assign(3, kInvalidOid);
  for (Oid& oid : persisted_children_) {
    SENTINEL_RETURN_IF_ERROR(dec->GetU64(&oid));
  }
  return Status::OK();
}

std::vector<Event*> AperiodicEvent::Children() const {
  std::vector<Event*> out;
  if (opener_) out.push_back(opener_.get());
  if (tracked_) out.push_back(tracked_.get());
  if (closer_) out.push_back(closer_.get());
  return out;
}

void AperiodicEvent::OnEvent(Event* source, const EventDetection& det) {
  if (source == opener_.get()) {
    windows_.push_back(det);
    return;
  }
  if (source == closer_.get()) {
    // Close every window opened before the closer completed.
    std::deque<EventDetection> still_open;
    for (const EventDetection& w : windows_) {
      if (!(w.end_ts < det.end_ts)) still_open.push_back(w);
    }
    windows_ = std::move(still_open);
    return;
  }
  if (source == tracked_.get() && !windows_.empty()) {
    // Signal once per tracked occurrence inside any open window, paired
    // with the oldest open window's initiator (windows stay open).
    const EventDetection& window = windows_.front();
    if (window.end_ts < det.end_ts) {
      Signal(EventDetection::Merge({window, det}));
    }
  }
}

void AperiodicEvent::ResetState() {
  windows_.clear();
  Event::ResetState();
}

std::string AperiodicEvent::Describe() const {
  return "Aperiodic(" + opener_->Describe() + ", " + tracked_->Describe() +
         ", " + closer_->Describe() + ")";
}

// --- PeriodicEvent -------------------------------------------------------------

PeriodicEvent::PeriodicEvent(EventPtr opener, int64_t period_micros,
                             EventPtr closer)
    : Event("PeriodicEvent"), period_micros_(period_micros) {
  SetChildrenList({std::move(opener), std::move(closer)});
}

PeriodicEvent::~PeriodicEvent() { Detach(); }

void PeriodicEvent::Detach() {
  if (opener_) opener_->RemoveListener(this);
  if (closer_) closer_->RemoveListener(this);
}

void PeriodicEvent::SetChildrenList(std::vector<EventPtr> children) {
  Detach();
  opener_ = children.size() > 0 ? std::move(children[0]) : nullptr;
  closer_ = children.size() > 1 ? std::move(children[1]) : nullptr;
  if (opener_) opener_->AddListener(this);
  if (closer_) closer_->AddListener(this);
  InvalidateGraphCaches();
}

void PeriodicEvent::SerializeState(Encoder* enc) const {
  enc->PutI64(period_micros_);
  enc->PutU64(opener_ ? opener_->oid() : kInvalidOid);
  enc->PutU64(closer_ ? closer_->oid() : kInvalidOid);
}

Status PeriodicEvent::DeserializeState(Decoder* dec) {
  SENTINEL_RETURN_IF_ERROR(dec->GetI64(&period_micros_));
  persisted_children_.assign(2, kInvalidOid);
  for (Oid& oid : persisted_children_) {
    SENTINEL_RETURN_IF_ERROR(dec->GetU64(&oid));
  }
  return Status::OK();
}

std::vector<Event*> PeriodicEvent::Children() const {
  std::vector<Event*> out;
  if (opener_) out.push_back(opener_.get());
  if (closer_) out.push_back(closer_.get());
  return out;
}

void PeriodicEvent::OnEvent(Event* source, const EventDetection& det) {
  if (source == opener_.get()) {
    windows_.push_back(
        Window{det, det.end_ts.micros + period_micros_});
    return;
  }
  if (source == closer_.get()) {
    std::deque<Window> still_open;
    for (const Window& w : windows_) {
      if (!(w.opened_by.end_ts < det.end_ts)) still_open.push_back(w);
    }
    windows_ = std::move(still_open);
  }
}

void PeriodicEvent::AdvanceTime(const Timestamp& now) {
  for (Window& w : windows_) {
    while (w.next_fire_micros <= now.micros) {
      EventDetection fire =
          EventDetection::FromOccurrence(TimerOccurrence(w.next_fire_micros));
      Signal(EventDetection::Merge({w.opened_by, fire}));
      w.next_fire_micros += period_micros_;
    }
  }
  Event::AdvanceTime(now);
}

void PeriodicEvent::ResetState() {
  windows_.clear();
  Event::ResetState();
}

std::string PeriodicEvent::Describe() const {
  return "Periodic(" + opener_->Describe() + ", " +
         std::to_string(period_micros_) + "us, " + closer_->Describe() + ")";
}

// --- PlusEvent -----------------------------------------------------------------

PlusEvent::PlusEvent(EventPtr base, int64_t delta_micros)
    : Event("PlusEvent"), delta_micros_(delta_micros) {
  SetChildrenList({std::move(base)});
}

PlusEvent::~PlusEvent() {
  if (base_) base_->RemoveListener(this);
}

void PlusEvent::SetChildrenList(std::vector<EventPtr> children) {
  if (base_) base_->RemoveListener(this);
  base_ = children.empty() ? nullptr : std::move(children[0]);
  if (base_) base_->AddListener(this);
  InvalidateGraphCaches();
}

void PlusEvent::SerializeState(Encoder* enc) const {
  enc->PutI64(delta_micros_);
  enc->PutU64(base_ ? base_->oid() : kInvalidOid);
}

Status PlusEvent::DeserializeState(Decoder* dec) {
  SENTINEL_RETURN_IF_ERROR(dec->GetI64(&delta_micros_));
  persisted_children_.assign(1, kInvalidOid);
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&persisted_children_[0]));
  return Status::OK();
}

std::vector<Event*> PlusEvent::Children() const {
  std::vector<Event*> out;
  if (base_) out.push_back(base_.get());
  return out;
}

void PlusEvent::OnEvent(Event* source, const EventDetection& det) {
  if (source == base_.get()) pending_.push_back(det);
}

void PlusEvent::AdvanceTime(const Timestamp& now) {
  std::deque<EventDetection> still_pending;
  for (const EventDetection& det : pending_) {
    int64_t due = det.end_ts.micros + delta_micros_;
    if (due <= now.micros) {
      EventDetection fire = EventDetection::FromOccurrence(
          TimerOccurrence(due));
      Signal(EventDetection::Merge({det, fire}));
    } else {
      still_pending.push_back(det);
    }
  }
  pending_ = std::move(still_pending);
  Event::AdvanceTime(now);
}

void PlusEvent::ResetState() {
  pending_.clear();
  Event::ResetState();
}

std::string PlusEvent::Describe() const {
  return "Plus(" + base_->Describe() + ", " +
         std::to_string(delta_micros_) + "us)";
}

// --- EveryEvent ----------------------------------------------------------------

EveryEvent::EveryEvent(size_t n, EventPtr base)
    : Event("EveryEvent"), n_(n == 0 ? 1 : n) {
  SetChildrenList({std::move(base)});
}

EveryEvent::~EveryEvent() {
  if (base_) base_->RemoveListener(this);
}

void EveryEvent::SetChildrenList(std::vector<EventPtr> children) {
  if (base_) base_->RemoveListener(this);
  base_ = children.empty() ? nullptr : std::move(children[0]);
  if (base_) base_->AddListener(this);
  InvalidateGraphCaches();
}

void EveryEvent::OnEvent(Event* source, const EventDetection& det) {
  if (source != base_.get()) return;
  window_.push_back(det);
  if (window_.size() < n_) return;
  Signal(EventDetection::Merge(window_));
  window_.clear();
}

void EveryEvent::ResetState() {
  window_.clear();
  Event::ResetState();
}

std::vector<Event*> EveryEvent::Children() const {
  std::vector<Event*> out;
  if (base_) out.push_back(base_.get());
  return out;
}

std::string EveryEvent::Describe() const {
  return "Every(" + std::to_string(n_) + ", " +
         (base_ ? base_->Describe() : "?") + ")";
}

void EveryEvent::SerializeState(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(n_));
  enc->PutU64(base_ ? base_->oid() : kInvalidOid);
}

Status EveryEvent::DeserializeState(Decoder* dec) {
  uint32_t n;
  SENTINEL_RETURN_IF_ERROR(dec->GetU32(&n));
  n_ = n == 0 ? 1 : n;
  persisted_children_.assign(1, kInvalidOid);
  SENTINEL_RETURN_IF_ERROR(dec->GetU64(&persisted_children_[0]));
  return Status::OK();
}

// --- Builders -------------------------------------------------------------------

EventPtr Any(size_t m, std::vector<EventPtr> children) {
  return std::make_shared<AnyEvent>(m, std::move(children));
}

EventPtr Not(EventPtr start, EventPtr forbidden, EventPtr finish,
             ParameterContext context) {
  return std::make_shared<NotEvent>(std::move(start), std::move(forbidden),
                                    std::move(finish), context);
}

EventPtr Aperiodic(EventPtr opener, EventPtr tracked, EventPtr closer) {
  return std::make_shared<AperiodicEvent>(std::move(opener),
                                          std::move(tracked),
                                          std::move(closer));
}

EventPtr Periodic(EventPtr opener, int64_t period_micros, EventPtr closer) {
  return std::make_shared<PeriodicEvent>(std::move(opener), period_micros,
                                         std::move(closer));
}

EventPtr Plus(EventPtr base, int64_t delta_micros) {
  return std::make_shared<PlusEvent>(std::move(base), delta_micros);
}

EventPtr Every(size_t n, EventPtr base) {
  return std::make_shared<EveryEvent>(n, std::move(base));
}

}  // namespace sentinel
