// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Event signatures: the textual names of primitive events.
//
// The paper creates primitive event objects from strings such as
//
//   new Primitive("end Employee::Set-Salary(float x)")     (§4.6)
//
// where the modifier says *when* the event is raised relative to the method
// (begin-of-method vs end-of-method, §4.3 "bom"/"eom"; the prose also uses
// "before"/"after", which we accept as synonyms) and the qualified name says
// *which* method raises it. Parameter declarations are informational — event
// matching is by (modifier, class, method).

#ifndef SENTINEL_EVENTS_SIGNATURE_H_
#define SENTINEL_EVENTS_SIGNATURE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sentinel {

/// When a primitive event fires relative to its method.
enum class EventModifier : uint8_t {
  kBegin = 0,  ///< bom — before the method body executes.
  kEnd = 1,    ///< eom — after the method body returns.
};

/// Renders "begin" or "end".
const char* ToString(EventModifier modifier);

/// Parsed form of "end Employee::SetSalary(float x)".
struct EventSignature {
  EventModifier modifier = EventModifier::kEnd;
  std::string class_name;
  std::string method;
  /// Declared formal parameters, verbatim (e.g. {"float x"}). Informational.
  std::vector<std::string> params;

  /// Parses a signature string. Accepted modifiers: "begin", "before",
  /// "bom" (begin) and "end", "after", "eom" (end). The parameter list is
  /// optional. Errors: InvalidArgument with a description.
  static Result<EventSignature> Parse(const std::string& text);

  /// Canonical text: "end Employee::SetSalary(float x)".
  std::string ToString() const;

  /// Matching key: "end Employee::SetSalary" (parameters excluded).
  std::string Key() const;

  bool operator==(const EventSignature& o) const {
    return modifier == o.modifier && class_name == o.class_name &&
           method == o.method;
  }
};

/// Builds a matching key from components (used by occurrence dispatch).
std::string EventKey(EventModifier modifier, const std::string& class_name,
                     const std::string& method);

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_SIGNATURE_H_
