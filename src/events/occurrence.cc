// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/occurrence.h"

namespace sentinel {

std::string EventOccurrence::ToString() const {
  std::string out = Key();
  out += sentinel::ToString(params);
  out += " by ";
  out += OidToString(oid);
  out += " at ";
  out += timestamp.ToString();
  return out;
}

}  // namespace sentinel
