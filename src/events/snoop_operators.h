// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Extension operators beyond the paper's conjunction/disjunction/sequence.
// These are the operators of Snoop — the event specification language the
// Sentinel project published as its follow-on work (§7 "future research
// directions") — implemented on the same Event-graph machinery:
//
//   Any(m, E1..En)        — signaled when m of the n distinct component
//                           events have occurred, in any order.
//   Not(E1, E2, E3)       — signaled when E3 occurs after E1 with no
//                           occurrence of E2 in between.
//   Aperiodic(E1, E2, E3) — signals each E2 inside the half-open window
//                           started by E1 and closed by E3.
//   Periodic(E1, t, E3)   — signals every t microseconds between E1 and E3.
//   Plus(E1, t)           — signals t microseconds after each E1.
//
// Periodic and Plus are time-driven; they fire from AdvanceTime(now), which
// the EventDetector calls with the current clock (tests drive it manually).

#ifndef SENTINEL_EVENTS_SNOOP_OPERATORS_H_
#define SENTINEL_EVENTS_SNOOP_OPERATORS_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "events/context.h"
#include "events/event.h"

namespace sentinel {

/// Any(m, E1..En): m-out-of-n completion, any order. Pairing is Chronicle
/// (oldest pending detection of each contributing child).
class AnyEvent : public Event, public EventListener {
 public:
  AnyEvent(size_t m, std::vector<EventPtr> children);
  ~AnyEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;

  size_t m() const { return m_; }

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook.
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  size_t m_;
  std::vector<EventPtr> children_;
  std::vector<std::deque<EventDetection>> pending_;  // One queue per child.
  std::vector<Oid> persisted_children_;
};

/// Not(E1, E2, E3): E3 after E1 with no intervening E2.
class NotEvent : public Event, public EventListener {
 public:
  /// `start` = E1, `forbidden` = E2, `finish` = E3.
  NotEvent(EventPtr start, EventPtr forbidden, EventPtr finish,
           ParameterContext context = ParameterContext::kChronicle);
  ~NotEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook: (start, forbidden, finish).
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  void Detach();

  EventPtr start_, forbidden_, finish_;
  PairingBuffer initiators_;
  std::vector<Oid> persisted_children_;
};

/// Aperiodic(E1, E2, E3): each E2 inside an open [E1, E3) window signals.
class AperiodicEvent : public Event, public EventListener {
 public:
  AperiodicEvent(EventPtr opener, EventPtr tracked, EventPtr closer);
  ~AperiodicEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;

  size_t open_windows() const { return windows_.size(); }

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook: (opener, tracked, closer).
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  void Detach();

  EventPtr opener_, tracked_, closer_;
  std::deque<EventDetection> windows_;  // Open window initiators.
  std::vector<Oid> persisted_children_;
};

/// Periodic(E1, period, E3): fires on the period grid while a window is
/// open. Detections carry a synthesized "__timer__" occurrence.
class PeriodicEvent : public Event, public EventListener {
 public:
  PeriodicEvent(EventPtr opener, int64_t period_micros, EventPtr closer);
  ~PeriodicEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;
  void AdvanceTime(const Timestamp& now) override;

  size_t open_windows() const { return windows_.size(); }
  int64_t period_micros() const { return period_micros_; }

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook: (opener, closer).
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  struct Window {
    EventDetection opened_by;
    int64_t next_fire_micros;
  };

  void Detach();

  EventPtr opener_, closer_;
  int64_t period_micros_;
  std::deque<Window> windows_;
  std::vector<Oid> persisted_children_;
};

/// Every(n, E): fires on every n-th detection of E, carrying the n
/// constituents that completed the window (a counting/closure-style
/// operator for "react to every 100th update" rules).
class EveryEvent : public Event, public EventListener {
 public:
  EveryEvent(size_t n, EventPtr base);
  ~EveryEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;

  size_t n() const { return n_; }
  size_t pending() const { return window_.size(); }

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook: (base).
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  size_t n_;
  EventPtr base_;
  std::vector<EventDetection> window_;
  std::vector<Oid> persisted_children_;
};

/// Plus(E1, delta): fires once, delta micros after each E1.
class PlusEvent : public Event, public EventListener {
 public:
  PlusEvent(EventPtr base, int64_t delta_micros);
  ~PlusEvent() override;

  std::vector<Event*> Children() const override;
  std::string Describe() const override;
  void ResetState() override;
  void OnEvent(Event* source, const EventDetection& det) override;
  void AdvanceTime(const Timestamp& now) override;

  size_t pending() const { return pending_.size(); }
  int64_t delta_micros() const { return delta_micros_; }

  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;
  const std::vector<Oid>& persisted_child_oids() const {
    return persisted_children_;
  }
  /// Registry relink hook: (base).
  void SetChildrenList(std::vector<EventPtr> children);

 private:
  EventPtr base_;
  int64_t delta_micros_;
  std::deque<EventDetection> pending_;
  std::vector<Oid> persisted_children_;
};

/// Builders.
EventPtr Any(size_t m, std::vector<EventPtr> children);
EventPtr Not(EventPtr start, EventPtr forbidden, EventPtr finish,
             ParameterContext context = ParameterContext::kChronicle);
EventPtr Aperiodic(EventPtr opener, EventPtr tracked, EventPtr closer);
EventPtr Periodic(EventPtr opener, int64_t period_micros, EventPtr closer);
EventPtr Plus(EventPtr base, int64_t delta_micros);
EventPtr Every(size_t n, EventPtr base);

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_SNOOP_OPERATORS_H_
