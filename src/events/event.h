// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Events as first-class objects (paper §3.3, §4.3).
//
// An Event is simultaneously:
//   * a Notifiable — reactive objects propagate primitive occurrences to it,
//   * a PersistentObject — it has an Oid, can be saved/restored (first-class
//     citizenship: "events are created, deleted, modified and designated as
//     persistent as other types of objects"),
//   * a node in an operator graph — composite events listen to their
//     children and signal their own detections upward.
//
// Detection flows: occurrences enter at any node via Notify() and are routed
// to the unique PrimitiveEvent leaves of that subtree; a leaf that matches
// Signals a detection; operator nodes combine child detections per their
// semantics and parameter context and Signal upward; rules listen at the
// root. Leaves deduplicate occurrences by timestamp so shared sub-events
// (one event object consumed by several rules, as in ADAM) are exact.

#ifndef SENTINEL_EVENTS_EVENT_H_
#define SENTINEL_EVENTS_EVENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "core/notifiable.h"
#include "events/occurrence.h"
#include "oodb/object.h"

namespace sentinel {

class Event;

/// How Event::Notify routes an occurrence to this subtree's leaves.
enum class EventRouting {
  /// Depth-first walk collecting leaves on every delivery (the naive
  /// strategy; O(tree size) per occurrence).
  kScan,
  /// Per-root index keyed by (modifier, method), rebuilt lazily when the
  /// graph changes; O(matching leaves) per occurrence. The default.
  kIndexed,
};

/// One detection of an event: the constituent primitive occurrences that
/// together satisfied the event expression, in occurrence order.
struct EventDetection {
  std::vector<EventOccurrence> constituents;

  /// Timestamp of the earliest / latest constituent.
  Timestamp start_ts;
  Timestamp end_ts;

  /// Transaction of the terminating occurrence (may be null).
  Transaction* txn = nullptr;

  /// Wraps a single occurrence.
  static EventDetection FromOccurrence(const EventOccurrence& occ);

  /// Concatenates detections in argument order, recomputing the time span;
  /// the transaction is taken from the chronologically last constituent.
  static EventDetection Merge(const std::vector<EventDetection>& parts);

  /// Constituent parameters of the first/last occurrence, convenience for
  /// rule conditions.
  const EventOccurrence& first() const { return constituents.front(); }
  const EventOccurrence& last() const { return constituents.back(); }

  std::string ToString() const;
};

/// Callback interface for event consumers in the operator graph (composite
/// events listening to children, and rules listening to their event).
class EventListener {
 public:
  virtual ~EventListener() = default;

  /// `source` signaled detection `det`.
  virtual void OnEvent(Event* source, const EventDetection& det) = 0;
};

/// Base class of the event hierarchy (paper Fig. 5: Event with Primitive,
/// Conjunction, Disjunction, Sequence subclasses; we add the Snoop operators
/// as extensions).
class Event : public Notifiable, public PersistentObject {
 public:
  /// `event_class` is the catalog class name, e.g. "PrimitiveEvent".
  explicit Event(std::string event_class);
  ~Event() override;

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // --- Consumer registration ----------------------------------------------

  void AddListener(EventListener* listener);
  void RemoveListener(EventListener* listener);
  size_t listener_count() const { return listeners_.size(); }

  // --- Occurrence intake (Notifiable) --------------------------------------

  /// Records `occ` and routes it to the unique primitive leaves of this
  /// subtree. Matching leaves Signal; detections propagate synchronously.
  void Notify(const EventOccurrence& occ) final;

  // --- Node behavior --------------------------------------------------------

  /// Direct children in the operator graph (empty for primitives).
  virtual std::vector<Event*> Children() const { return {}; }

  /// Advances logical time for temporal operators (Periodic/Plus); the
  /// default forwards to children. Detections may be signaled from here.
  virtual void AdvanceTime(const Timestamp& now);

  /// Clears buffered partial state (not the signal counters).
  virtual void ResetState();

  /// One-line description, e.g. "And(end Stock::SetPrice, end Fin::SetValue)".
  virtual std::string Describe() const = 0;

  // --- Introspection --------------------------------------------------------

  /// Number of times this event has been signaled.
  uint64_t signal_count() const { return signal_count_; }

  /// Paper's `Raised` attribute: has the event ever been signaled?
  bool raised() const { return signal_count_ > 0; }

  /// The most recent detection. Precondition: raised().
  const EventDetection& last_detection() const { return last_detection_; }

  /// Process-wide routing strategy (ablation hook; see bench_ablation).
  static void SetRouting(EventRouting routing);
  static EventRouting routing();

  /// Signals that some event graph changed shape; indexed routing caches
  /// revalidate lazily. Called by operators when children are rewired.
  static void InvalidateGraphCaches();

 protected:
  /// Routing key of a primitive leaf: "end SetSalary" (class excluded —
  /// subclass matching is the leaf's own job). Empty for non-leaf nodes,
  /// which never consume primitives.
  virtual std::string RoutingKey() const { return std::string(); }


  /// Delivers a matched occurrence to this node if it is a primitive leaf.
  /// Called by the routing in Notify(); default is a no-op (operators only
  /// react to child signals).
  virtual void ConsumePrimitive(const EventOccurrence& occ);

  /// Publishes a detection to all listeners and updates counters. Listener
  /// callbacks run synchronously; a listener may remove itself during the
  /// callback (delivery iterates over a snapshot).
  void Signal(const EventDetection& det);

 private:
  /// Depth-first collection of unique leaves (diamond-safe).
  void CollectLeaves(std::vector<Event*>* leaves,
                     std::vector<const Event*>* visited);

  /// Rebuilds leaf_index_ when the graph epoch moved.
  void RefreshLeafIndex();

  std::vector<EventListener*> listeners_;
  uint64_t signal_count_ = 0;
  EventDetection last_detection_;

  // Indexed routing state (per delivery root).
  uint64_t index_epoch_ = 0;  // 0 = never built.
  std::unordered_map<std::string, std::vector<Event*>> leaf_index_;

  static std::atomic<uint64_t> graph_epoch_;
  static std::atomic<EventRouting> routing_;
};

/// Shared ownership alias used across the API: event graphs are built from
/// shared_ptr nodes so one event object can participate in several rules.
using EventPtr = std::shared_ptr<Event>;

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_EVENT_H_
