// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// EventDetector: the bookkeeping half of event management (paper Fig. 2:
// "The rule passes the events to the event detector for storage and event
// detection").
//
// Detection itself happens inside the event graph (Event/operator nodes);
// the detector owns what surrounds it:
//   * a registry of named event objects (create/look up/delete events at
//     runtime — first-class citizenship),
//   * the global occurrence log and per-signature counters,
//   * the logical-time pump for temporal operators,
//   * persistence: saving and restoring whole event graphs through the
//     object store, with two-phase relinking of operator children.

#ifndef SENTINEL_EVENTS_DETECTOR_H_
#define SENTINEL_EVENTS_DETECTOR_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "events/event.h"
#include "events/operators.h"
#include "events/primitive_event.h"
#include "events/snoop_operators.h"
#include "oodb/object_store.h"

namespace sentinel {

/// Record holding the persisted name->root-oid index of the registry.
constexpr Oid kEventIndexOid = 3;

/// Registry, log, and persistence for event objects.
class EventDetector {
 public:
  explicit EventDetector(const ClassCatalog* catalog = nullptr)
      : catalog_(catalog) {}

  EventDetector(const EventDetector&) = delete;
  EventDetector& operator=(const EventDetector&) = delete;

  // --- Named event objects --------------------------------------------------

  /// Registers `event` under `name`. AlreadyExists on duplicates.
  Status RegisterEvent(const std::string& name, EventPtr event);

  /// Looks up a named event.
  Result<EventPtr> GetEvent(const std::string& name) const;

  /// Removes a named event from the registry (the object dies when the last
  /// rule referencing it does — shared ownership).
  Status UnregisterEvent(const std::string& name);

  std::vector<std::string> EventNames() const;
  size_t event_count() const { return named_.size(); }

  /// Finds an event node by its persistent oid (named roots with assigned
  /// oids and nodes restored by LoadAll). O(1) via the oid index, which
  /// Register/Unregister/SaveAll/LoadAll keep in sync. NotFound otherwise.
  Result<EventPtr> FindByOid(Oid oid) const;

  // --- Occurrence log ---------------------------------------------------------

  /// Logs one generated occurrence (called by the database on every raise).
  void RecordOccurrence(const EventOccurrence& occ);

  uint64_t occurrence_total() const { return occurrence_total_; }
  const std::deque<EventOccurrence>& occurrence_log() const { return log_; }

  /// Caps the global log; overflow trims oldest-first so long-running
  /// (gateway) workloads don't grow memory without limit. Applies
  /// immediately when the log is already over the new cap.
  void set_log_capacity(size_t capacity);
  size_t log_capacity() const { return log_capacity_; }

  /// Occurrences dropped from the log by FIFO trimming since construction.
  uint64_t occurrence_trimmed_total() const { return trimmed_total_; }

  /// Occurrences logged for one signature key ("end Employee::SetSalary").
  uint64_t CountForKey(const std::string& key) const;

  /// Caps the number of distinct per-key counters. Keys are workload-
  /// controlled (class::method strings), so without a bound a generated
  /// workload grows this map forever; beyond the cap new keys are counted
  /// only in key_counts_untracked_total(). Existing keys keep counting.
  void set_key_count_capacity(size_t capacity) {
    key_count_capacity_ = capacity;
  }
  size_t key_count_capacity() const { return key_count_capacity_; }
  size_t key_count_size() const { return key_counts_.size(); }

  /// Occurrences whose key was not admitted to the counter map.
  uint64_t key_counts_untracked_total() const {
    return key_counts_untracked_;
  }

  /// Wires the detector to a metrics registry: every RecordOccurrence bumps
  /// events.occurrences, every FIFO trim bumps events.log_trimmed.
  void SetMetrics(MetricsRegistry* registry) {
    m_occurrences_ = registry->counter("events.occurrences");
    m_trimmed_ = registry->counter("events.log_trimmed");
  }

  // --- Time pump (Periodic/Plus) ----------------------------------------------

  /// Advances logical time on every registered root (and, through routing,
  /// its subtree). Temporal operators may Signal from here.
  void AdvanceTime(const Timestamp& now);

  // --- Persistence --------------------------------------------------------------

  /// Stages every named event graph (all reachable nodes) into `txn`.
  /// Nodes without oids get fresh ones from the store.
  Status SaveAll(ObjectStore* store, Transaction* txn);

  /// Rebuilds the registry from the store: instantiates every persisted
  /// event node, relinks operator children, restores names. Existing
  /// registry content is replaced.
  Status LoadAll(ObjectStore* store);

 private:
  /// All nodes reachable from the named roots (deduplicated).
  std::vector<Event*> ReachableNodes() const;

  /// Drops oldest log entries until the log fits the capacity.
  void TrimLog();

  const ClassCatalog* catalog_;
  std::map<std::string, EventPtr> named_;
  /// Keeps loaded anonymous nodes alive alongside their parents.
  std::map<Oid, EventPtr> loaded_;
  /// oid -> node for FindByOid (replaces a linear registry scan). Entries
  /// are erased in lockstep with named_/loaded_ so the index never extends
  /// a node's lifetime past its registry entry.
  std::unordered_map<Oid, EventPtr> oid_index_;

  std::deque<EventOccurrence> log_;
  size_t log_capacity_ = 4096;
  uint64_t occurrence_total_ = 0;
  uint64_t trimmed_total_ = 0;
  std::map<std::string, uint64_t> key_counts_;
  size_t key_count_capacity_ = 4096;
  uint64_t key_counts_untracked_ = 0;
  Counter* m_occurrences_ = nullptr;
  Counter* m_trimmed_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_DETECTOR_H_
