// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// EventDetector: the bookkeeping half of event management (paper Fig. 2:
// "The rule passes the events to the event detector for storage and event
// detection").
//
// Detection itself happens inside the event graph (Event/operator nodes);
// the detector owns what surrounds it:
//   * a registry of named event objects (create/look up/delete events at
//     runtime — first-class citizenship),
//   * the global occurrence log and per-signature counters,
//   * the logical-time pump for temporal operators,
//   * persistence: saving and restoring whole event graphs through the
//     object store, with two-phase relinking of operator children.

#ifndef SENTINEL_EVENTS_DETECTOR_H_
#define SENTINEL_EVENTS_DETECTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "events/event.h"
#include "events/operators.h"
#include "events/primitive_event.h"
#include "events/snoop_operators.h"
#include "oodb/object_store.h"

namespace sentinel {

/// Record holding the persisted name->root-oid index of the registry.
constexpr Oid kEventIndexOid = 3;

/// Registry, log, and persistence for event objects.
class EventDetector {
 public:
  explicit EventDetector(const ClassCatalog* catalog = nullptr)
      : catalog_(catalog) {
    segments_.push_back(std::make_unique<LogSegment>());
  }

  EventDetector(const EventDetector&) = delete;
  EventDetector& operator=(const EventDetector&) = delete;

  // --- Named event objects --------------------------------------------------

  /// Registers `event` under `name`. AlreadyExists on duplicates.
  Status RegisterEvent(const std::string& name, EventPtr event);

  /// Looks up a named event.
  Result<EventPtr> GetEvent(const std::string& name) const;

  /// Removes a named event from the registry (the object dies when the last
  /// rule referencing it does — shared ownership).
  Status UnregisterEvent(const std::string& name);

  std::vector<std::string> EventNames() const;
  size_t event_count() const { return named_.size(); }

  /// Finds an event node by its persistent oid (named roots with assigned
  /// oids and nodes restored by LoadAll). O(1) via the oid index, which
  /// Register/Unregister/SaveAll/LoadAll keep in sync. NotFound otherwise.
  Result<EventPtr> FindByOid(Oid oid) const;

  // --- Occurrence log ---------------------------------------------------------

  /// The raise path is sharded (core/shard.h): each shard appends to its
  /// own log segment, so RecordOccurrence never contends across shards.
  /// Must be called before any occurrence is recorded; keeps segment 0's
  /// content (the single-shard log) when growing.
  void SetShardCount(size_t shards);
  size_t shard_count() const { return segments_.size(); }

  /// Logs one generated occurrence (called by the database on every raise)
  /// into `shard`'s segment. With the default single shard this is exactly
  /// the old global log.
  void RecordOccurrence(const EventOccurrence& occ, size_t shard = 0);

  uint64_t occurrence_total() const {
    return occurrence_total_.load(std::memory_order_relaxed);
  }

  /// Segment 0's log — the complete log in the single-shard configuration.
  /// Multi-shard callers wanting the global order use MergedLog().
  const std::deque<EventOccurrence>& occurrence_log() const {
    return segments_[0]->log;
  }

  /// All segments' entries merged into logical-clock order. The timestamps
  /// come from the process-wide monotone clock, so the merge reconstructs
  /// the paper's single global event order. Call with shards quiesced.
  std::vector<EventOccurrence> MergedLog() const;

  /// Caps each log segment; overflow trims oldest-first so long-running
  /// (gateway) workloads don't grow memory without limit. Applies
  /// immediately when a segment is already over the new cap.
  void set_log_capacity(size_t capacity);
  size_t log_capacity() const { return log_capacity_; }

  /// Occurrences dropped from the logs by FIFO trimming since construction
  /// (summed over segments; exact once shards quiesce).
  uint64_t occurrence_trimmed_total() const;

  /// Installs the spill sink: every occurrence about to be FIFO-trimmed is
  /// handed to `sink` (with the owning shard) instead of vanishing. The
  /// sink runs on the trimming shard's thread with no detector locks held —
  /// the history segment store hangs off this. Pass nullptr to drop
  /// trimmed occurrences again (the pre-spill behavior).
  void SetSpillSink(
      std::function<void(size_t shard, const EventOccurrence& occ)> sink) {
    spill_sink_ = std::move(sink);
  }

  /// Occurrences logged for one signature key ("end Employee::SetSalary"),
  /// summed over segments.
  uint64_t CountForKey(const std::string& key) const;

  /// Caps the number of distinct per-key counters. Keys are workload-
  /// controlled (class::method strings), so without a bound a generated
  /// workload grows this map forever; beyond the cap new keys are counted
  /// only in key_counts_untracked_total(). Existing keys keep counting.
  void set_key_count_capacity(size_t capacity) {
    key_count_capacity_ = capacity;
  }
  size_t key_count_capacity() const { return key_count_capacity_; }
  size_t key_count_size() const;

  /// Occurrences whose key was not admitted to a counter map (summed over
  /// segments).
  uint64_t key_counts_untracked_total() const;

  /// Wires the detector to a metrics registry: every RecordOccurrence bumps
  /// events.occurrences, every FIFO trim bumps events.log_trimmed.
  void SetMetrics(MetricsRegistry* registry) {
    m_occurrences_ = registry->counter("events.occurrences");
    m_trimmed_ = registry->counter("events.log_trimmed");
  }

  // --- Time pump (Periodic/Plus) ----------------------------------------------

  /// Advances logical time on every registered root (and, through routing,
  /// its subtree). Temporal operators may Signal from here.
  void AdvanceTime(const Timestamp& now);

  // --- Persistence --------------------------------------------------------------

  /// Stages every named event graph (all reachable nodes) into `txn`.
  /// Nodes without oids get fresh ones from the store.
  Status SaveAll(ObjectStore* store, Transaction* txn);

  /// Rebuilds the registry from the store: instantiates every persisted
  /// event node, relinks operator children, restores names. Existing
  /// registry content is replaced.
  Status LoadAll(ObjectStore* store);

 private:
  /// Per-shard slice of the occurrence bookkeeping: only the owning shard's
  /// thread touches a segment's mutable state, so recording needs no lock.
  struct LogSegment {
    std::deque<EventOccurrence> log;
    uint64_t trimmed_total = 0;
    std::map<std::string, uint64_t> key_counts;
    uint64_t key_counts_untracked = 0;
  };

  /// All nodes reachable from the named roots (deduplicated).
  std::vector<Event*> ReachableNodes() const;

  /// Drops oldest entries until `segment`'s log fits the capacity,
  /// spilling each into the sink (tagged with `shard`) when one is set.
  void TrimLog(LogSegment* segment, size_t shard);

  const ClassCatalog* catalog_;
  std::map<std::string, EventPtr> named_;
  /// Keeps loaded anonymous nodes alive alongside their parents.
  std::map<Oid, EventPtr> loaded_;
  /// oid -> node for FindByOid (replaces a linear registry scan). Entries
  /// are erased in lockstep with named_/loaded_ so the index never extends
  /// a node's lifetime past its registry entry.
  std::unordered_map<Oid, EventPtr> oid_index_;

  /// unique_ptr for stable addresses; at least one segment always exists.
  std::vector<std::unique_ptr<LogSegment>> segments_;
  size_t log_capacity_ = 4096;  ///< Per segment.
  std::atomic<uint64_t> occurrence_total_{0};
  size_t key_count_capacity_ = 4096;  ///< Per segment.
  std::function<void(size_t, const EventOccurrence&)> spill_sink_;
  Counter* m_occurrences_ = nullptr;
  Counter* m_trimmed_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_DETECTOR_H_
