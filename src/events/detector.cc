// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/detector.h"

#include <algorithm>

#include "common/logging.h"

namespace sentinel {

namespace {
constexpr char kEventIndexClass[] = "__event_index__";
}  // namespace

Status EventDetector::RegisterEvent(const std::string& name,
                                    EventPtr event) {
  if (event == nullptr) return Status::InvalidArgument("null event");
  if (named_.count(name) != 0) {
    return Status::AlreadyExists("event " + name);
  }
  if (event->oid() != kInvalidOid) oid_index_[event->oid()] = event;
  named_.emplace(name, std::move(event));
  return Status::OK();
}

Result<EventPtr> EventDetector::GetEvent(const std::string& name) const {
  auto it = named_.find(name);
  if (it == named_.end()) return Status::NotFound("event " + name);
  return it->second;
}

Status EventDetector::UnregisterEvent(const std::string& name) {
  auto it = named_.find(name);
  if (it == named_.end()) return Status::NotFound("event " + name);
  Oid oid = it->second->oid();
  named_.erase(it);
  // Evict from the oid index unless something else still registers the
  // node (an alias name, or the loaded_ cache from LoadAll).
  if (oid != kInvalidOid && loaded_.count(oid) == 0) {
    bool aliased = false;
    for (const auto& [other_name, event] : named_) {
      if (event->oid() == oid) {
        aliased = true;
        break;
      }
    }
    if (!aliased) oid_index_.erase(oid);
  }
  return Status::OK();
}

std::vector<std::string> EventDetector::EventNames() const {
  std::vector<std::string> names;
  names.reserve(named_.size());
  for (const auto& [name, event] : named_) names.push_back(name);
  return names;
}

Result<EventPtr> EventDetector::FindByOid(Oid oid) const {
  if (oid == kInvalidOid) return Status::InvalidArgument("invalid oid");
  auto it = oid_index_.find(oid);
  if (it != oid_index_.end()) return it->second;
  return Status::NotFound("no event with " + OidToString(oid));
}

void EventDetector::SetShardCount(size_t shards) {
  if (shards < 1) shards = 1;
  while (segments_.size() < shards) {
    segments_.push_back(std::make_unique<LogSegment>());
  }
  // Never shrink: segment addresses must stay stable for live shards.
}

void EventDetector::RecordOccurrence(const EventOccurrence& occ,
                                     size_t shard) {
  if (shard >= segments_.size()) shard = 0;
  LogSegment& seg = *segments_[shard];
  seg.log.push_back(occ);
  occurrence_total_.fetch_add(1, std::memory_order_relaxed);
  metrics::Add(m_occurrences_);
  // Per-key counters are admission-capped: keys come from the workload
  // (class::method strings), so an open-ended stream of fresh signatures
  // must not grow the map without bound. Admitted keys keep counting;
  // overflow keys are tallied in aggregate instead.
  std::string key = occ.Key();
  auto it = seg.key_counts.find(key);
  if (it != seg.key_counts.end()) {
    ++it->second;
  } else if (seg.key_counts.size() < key_count_capacity_) {
    seg.key_counts.emplace(std::move(key), 1);
  } else {
    ++seg.key_counts_untracked;
  }
  TrimLog(&seg, shard);
}

void EventDetector::set_log_capacity(size_t capacity) {
  log_capacity_ = capacity;
  for (size_t i = 0; i < segments_.size(); ++i) {
    TrimLog(segments_[i].get(), i);
  }
}

void EventDetector::TrimLog(LogSegment* segment, size_t shard) {
  while (segment->log.size() > log_capacity_) {
    // Spill before dropping: the history store turns the FIFO eviction
    // into an append to the shard's durable segment file.
    if (spill_sink_) spill_sink_(shard, segment->log.front());
    segment->log.pop_front();
    ++segment->trimmed_total;
    metrics::Add(m_trimmed_);
  }
}

std::vector<EventOccurrence> EventDetector::MergedLog() const {
  std::vector<EventOccurrence> merged;
  for (const auto& seg : segments_) {
    merged.insert(merged.end(), seg->log.begin(), seg->log.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const EventOccurrence& a, const EventOccurrence& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

uint64_t EventDetector::occurrence_trimmed_total() const {
  uint64_t total = 0;
  for (const auto& seg : segments_) total += seg->trimmed_total;
  return total;
}

uint64_t EventDetector::CountForKey(const std::string& key) const {
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    auto it = seg->key_counts.find(key);
    if (it != seg->key_counts.end()) total += it->second;
  }
  return total;
}

size_t EventDetector::key_count_size() const {
  size_t total = 0;
  for (const auto& seg : segments_) total += seg->key_counts.size();
  return total;
}

uint64_t EventDetector::key_counts_untracked_total() const {
  uint64_t total = 0;
  for (const auto& seg : segments_) total += seg->key_counts_untracked;
  return total;
}

void EventDetector::AdvanceTime(const Timestamp& now) {
  for (const auto& [name, event] : named_) event->AdvanceTime(now);
}

std::vector<Event*> EventDetector::ReachableNodes() const {
  std::vector<Event*> nodes;
  std::vector<Event*> stack;
  for (const auto& [name, event] : named_) stack.push_back(event.get());
  while (!stack.empty()) {
    Event* node = stack.back();
    stack.pop_back();
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) continue;
    nodes.push_back(node);
    for (Event* child : node->Children()) stack.push_back(child);
  }
  return nodes;
}

Status EventDetector::SaveAll(ObjectStore* store, Transaction* txn) {
  // Phase 1: make sure every reachable node has an oid (children first is
  // unnecessary — oids are assigned before any serialization happens).
  std::vector<Event*> nodes = ReachableNodes();
  for (Event* node : nodes) {
    if (node->oid() == kInvalidOid) node->set_oid(store->NewOid());
  }
  // Roots registered before they had oids become findable by oid now.
  for (const auto& [name, event] : named_) {
    oid_index_[event->oid()] = event;
  }
  // Phase 2: serialize each node (child oids are now stable).
  for (Event* node : nodes) {
    Encoder enc;
    node->SerializeState(&enc);
    SENTINEL_RETURN_IF_ERROR(
        store->Put(txn, node->oid(), node->class_name(), enc.Release()));
  }
  // Phase 3: persist the name index.
  Encoder index;
  index.PutU32(static_cast<uint32_t>(named_.size()));
  for (const auto& [name, event] : named_) {
    index.PutString(name);
    index.PutU64(event->oid());
  }
  return store->Put(txn, kEventIndexOid, kEventIndexClass, index.Release());
}

Status EventDetector::LoadAll(ObjectStore* store) {
  named_.clear();
  loaded_.clear();
  oid_index_.clear();

  // Phase 1: instantiate every persisted event node.
  static const char* kEventClasses[] = {
      "PrimitiveEvent", "Conjunction", "Disjunction", "Sequence",
      "AnyEvent",       "NotEvent",    "AperiodicEvent", "PeriodicEvent",
      "PlusEvent",      "EveryEvent"};
  for (const char* cls : kEventClasses) {
    for (Oid oid : store->Extent(cls)) {
      std::string class_name, state;
      SENTINEL_RETURN_IF_ERROR(
          store->Get(nullptr, oid, &class_name, &state));
      EventPtr node;
      const std::string c = class_name;
      if (c == "PrimitiveEvent") {
        auto prim = std::make_shared<PrimitiveEvent>(EventSignature{});
        prim->set_catalog(catalog_);
        node = prim;
      } else if (c == "Conjunction") {
        node = std::make_shared<Conjunction>(nullptr, nullptr);
      } else if (c == "Disjunction") {
        node = std::make_shared<Disjunction>(nullptr, nullptr);
      } else if (c == "Sequence") {
        node = std::make_shared<Sequence>(nullptr, nullptr);
      } else if (c == "AnyEvent") {
        node = std::make_shared<AnyEvent>(0, std::vector<EventPtr>{});
      } else if (c == "NotEvent") {
        node = std::make_shared<NotEvent>(nullptr, nullptr, nullptr);
      } else if (c == "AperiodicEvent") {
        node = std::make_shared<AperiodicEvent>(nullptr, nullptr, nullptr);
      } else if (c == "PeriodicEvent") {
        node = std::make_shared<PeriodicEvent>(nullptr, 0, nullptr);
      } else if (c == "PlusEvent") {
        node = std::make_shared<PlusEvent>(nullptr, 0);
      } else if (c == "EveryEvent") {
        node = std::make_shared<EveryEvent>(1, nullptr);
      } else {
        return Status::Corruption("unknown event class " + c);
      }
      Decoder dec(state);
      SENTINEL_RETURN_IF_ERROR(node->DeserializeState(&dec));
      node->set_oid(oid);
      oid_index_[oid] = node;
      loaded_[oid] = std::move(node);
    }
  }

  // Phase 2: relink operator children.
  auto lookup = [this](Oid oid) -> EventPtr {
    if (oid == kInvalidOid) return nullptr;
    auto it = loaded_.find(oid);
    return it == loaded_.end() ? nullptr : it->second;
  };
  for (auto& [oid, node] : loaded_) {
    if (auto* bin = dynamic_cast<BinaryEvent*>(node.get())) {
      bin->SetChildren(lookup(bin->persisted_left_oid()),
                       lookup(bin->persisted_right_oid()));
    } else if (auto* any = dynamic_cast<AnyEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : any->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      if (!children.empty()) any->SetChildrenList(std::move(children));
    } else if (auto* notev = dynamic_cast<NotEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : notev->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      notev->SetChildrenList(std::move(children));
    } else if (auto* ap = dynamic_cast<AperiodicEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : ap->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      ap->SetChildrenList(std::move(children));
    } else if (auto* per = dynamic_cast<PeriodicEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : per->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      per->SetChildrenList(std::move(children));
    } else if (auto* plus = dynamic_cast<PlusEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : plus->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      plus->SetChildrenList(std::move(children));
    } else if (auto* every = dynamic_cast<EveryEvent*>(node.get())) {
      std::vector<EventPtr> children;
      for (Oid child : every->persisted_child_oids()) {
        children.push_back(lookup(child));
      }
      every->SetChildrenList(std::move(children));
    }
  }

  // Phase 3: restore the name index.
  std::string class_name, state;
  Status s = store->Get(nullptr, kEventIndexOid, &class_name, &state);
  if (s.IsNotFound()) return Status::OK();  // Nothing was ever saved.
  SENTINEL_RETURN_IF_ERROR(s);
  Decoder dec(state);
  uint32_t count;
  SENTINEL_RETURN_IF_ERROR(dec.GetU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    Oid oid;
    SENTINEL_RETURN_IF_ERROR(dec.GetString(&name));
    SENTINEL_RETURN_IF_ERROR(dec.GetU64(&oid));
    EventPtr root = lookup(oid);
    if (root == nullptr) {
      return Status::Corruption("event index references missing " +
                                OidToString(oid));
    }
    named_[name] = std::move(root);
  }
  if (dec.remaining() != 0) {
    // The count said we were done but bytes follow — a truncated count or
    // spliced record. Accepting it would silently drop whatever the extra
    // bytes encoded.
    return Status::Corruption(
        "event name index has " + std::to_string(dec.remaining()) +
        " trailing bytes after " + std::to_string(count) + " entries");
  }
  SENTINEL_INFO << "restored " << named_.size() << " named events ("
                << loaded_.size() << " nodes)";
  return Status::OK();
}

}  // namespace sentinel
