// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// The paper's composite-event operators (§4.3, Fig. 5/6):
//
//   Conjunction(E1, E2) — signaled when both E1 and E2 have occurred,
//       regardless of order (composite constituents likewise unordered).
//   Disjunction(E1, E2) — signaled when either E1 or E2 occurs.
//   Sequence(E1, E2)    — signaled when E2 occurs provided E1 occurred
//       earlier; for composite children, when the last component of E2
//       occurs provided all components of E1 have occurred.
//
// Every operator takes a ParameterContext deciding which buffered partial
// detections pair with a completing one (default Chronicle = FIFO).

#ifndef SENTINEL_EVENTS_OPERATORS_H_
#define SENTINEL_EVENTS_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "events/context.h"
#include "events/event.h"

namespace sentinel {

/// Common machinery for two-child operators: child wiring and listening.
class BinaryEvent : public Event, public EventListener {
 public:
  BinaryEvent(std::string event_class, EventPtr left, EventPtr right,
              ParameterContext context);
  ~BinaryEvent() override;

  std::vector<Event*> Children() const override;
  ParameterContext context() const { return context_; }

  /// Rewires children (used by the registry when restoring persisted event
  /// graphs). Detaches from previous children first.
  void SetChildren(EventPtr left, EventPtr right);

  Event* left() const { return left_.get(); }
  Event* right() const { return right_.get(); }

  // EventListener: dispatches to OnLeft/OnRight.
  void OnEvent(Event* source, const EventDetection& det) final;

  // --- Persistence: stores context + child oids (graph relinked by the
  // EventRegistry). ----------------------------------------------------------
  void SerializeState(Encoder* enc) const override;
  Status DeserializeState(Decoder* dec) override;

  /// Child oids captured by DeserializeState, for registry relinking.
  Oid persisted_left_oid() const { return persisted_left_; }
  Oid persisted_right_oid() const { return persisted_right_; }

 protected:
  virtual void OnLeft(const EventDetection& det) = 0;
  virtual void OnRight(const EventDetection& det) = 0;

  ParameterContext context_;

 private:
  EventPtr left_;
  EventPtr right_;
  Oid persisted_left_ = kInvalidOid;
  Oid persisted_right_ = kInvalidOid;
};

/// And: both children, any order.
class Conjunction : public BinaryEvent {
 public:
  Conjunction(EventPtr left, EventPtr right,
              ParameterContext context = ParameterContext::kChronicle);

  std::string Describe() const override;
  void ResetState() override;

  /// Pending partial detections per side (tests/benches).
  size_t pending_left() const { return left_buffer_.size(); }
  size_t pending_right() const { return right_buffer_.size(); }

 protected:
  void OnLeft(const EventDetection& det) override;
  void OnRight(const EventDetection& det) override;

 private:
  void OnSide(PairingBuffer* mine, PairingBuffer* other,
              const EventDetection& det);

  PairingBuffer left_buffer_{ParameterContext::kChronicle};
  PairingBuffer right_buffer_{ParameterContext::kChronicle};
};

/// Or: either child.
class Disjunction : public BinaryEvent {
 public:
  Disjunction(EventPtr left, EventPtr right,
              ParameterContext context = ParameterContext::kChronicle);

  std::string Describe() const override;

 protected:
  void OnLeft(const EventDetection& det) override;
  void OnRight(const EventDetection& det) override;
};

/// Seq: left strictly before right (by detection completion time).
class Sequence : public BinaryEvent {
 public:
  Sequence(EventPtr left, EventPtr right,
           ParameterContext context = ParameterContext::kChronicle);

  std::string Describe() const override;
  void ResetState() override;

  size_t pending_initiators() const { return initiators_.size(); }

 protected:
  void OnLeft(const EventDetection& det) override;
  void OnRight(const EventDetection& det) override;

 private:
  PairingBuffer initiators_{ParameterContext::kChronicle};
};

/// Convenience builders mirroring the paper's `new Conjunction(e1, e2)`.
EventPtr And(EventPtr left, EventPtr right,
             ParameterContext context = ParameterContext::kChronicle);
EventPtr Or(EventPtr left, EventPtr right,
            ParameterContext context = ParameterContext::kChronicle);
EventPtr Seq(EventPtr left, EventPtr right,
             ParameterContext context = ParameterContext::kChronicle);

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_OPERATORS_H_
