// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Parameter contexts for composite-event detection.
//
// When a composite event can be completed by more than one buffered
// constituent, a *parameter context* decides which constituent(s) pair with
// the terminating occurrence. The paper's follow-on work (Snoop, the event
// language the Sentinel project published next) defines four contexts; we
// implement them as the configurable pairing policy of every binary
// operator. The paper's own examples behave identically under the default
// (Chronicle) because they never buffer more than one pending constituent.
//
//   Recent     — only the most recent initiator is kept; it is reused by
//                subsequent terminators until displaced.
//   Chronicle  — initiators pair in arrival (FIFO) order and are consumed.
//   Continuous — every initiator opens a window; one terminator closes all
//                open windows, producing one detection per initiator.
//   Cumulative — all pending initiators are merged into a single detection.

#ifndef SENTINEL_EVENTS_CONTEXT_H_
#define SENTINEL_EVENTS_CONTEXT_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "events/event.h"

namespace sentinel {

/// Which pending constituents a terminator pairs with.
enum class ParameterContext : uint8_t {
  kRecent = 0,
  kChronicle = 1,
  kContinuous = 2,
  kCumulative = 3,
};

const char* ToString(ParameterContext context);

/// Buffer of pending initiator detections with context-directed pairing.
class PairingBuffer {
 public:
  explicit PairingBuffer(ParameterContext context) : context_(context) {}

  ParameterContext context() const { return context_; }

  /// Buffers an initiator detection. Under Recent, displaces older ones.
  void AddInitiator(const EventDetection& det);

  /// Pairs the terminator with buffered initiators per the context.
  /// `eligible` filters candidates (e.g. Sequence requires the initiator to
  /// precede the terminator). Returns one group of initiators per detection
  /// to signal (each group is merged with the terminator by the caller);
  /// empty when nothing pairs. Consumed initiators are removed except under
  /// Recent, which retains the most recent one for reuse.
  std::vector<std::vector<EventDetection>> PairWithTerminator(
      const EventDetection& terminator,
      const std::function<bool(const EventDetection&)>& eligible);

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }
  void Clear() { pending_.clear(); }

  /// Read-only view of pending initiators, oldest first.
  const std::deque<EventDetection>& pending() const { return pending_; }

 private:
  ParameterContext context_;
  std::deque<EventDetection> pending_;
};

}  // namespace sentinel

#endif  // SENTINEL_EVENTS_CONTEXT_H_
