// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "events/signature.h"

#include <cctype>

namespace sentinel {

namespace {

/// Strips leading/trailing whitespace.
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// True for C++ identifier characters (plus '-', which the paper's listings
/// use in names like Set-Salary).
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

const char* ToString(EventModifier modifier) {
  return modifier == EventModifier::kBegin ? "begin" : "end";
}

std::string EventKey(EventModifier modifier, const std::string& class_name,
                     const std::string& method) {
  std::string key = ToString(modifier);
  key += ' ';
  key += class_name;
  key += "::";
  key += method;
  return key;
}

Result<EventSignature> EventSignature::Parse(const std::string& text) {
  std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("empty event signature");

  // Modifier word.
  size_t sp = s.find_first_of(" \t");
  if (sp == std::string::npos) {
    return Status::InvalidArgument("event signature needs a modifier: '" +
                                   text + "'");
  }
  std::string word = s.substr(0, sp);
  EventSignature sig;
  if (word == "begin" || word == "before" || word == "bom") {
    sig.modifier = EventModifier::kBegin;
  } else if (word == "end" || word == "after" || word == "eom") {
    sig.modifier = EventModifier::kEnd;
  } else {
    return Status::InvalidArgument("unknown event modifier '" + word + "'");
  }

  std::string rest = Trim(s.substr(sp));
  // Qualified name up to '(' or end.
  size_t paren = rest.find('(');
  std::string qual = Trim(paren == std::string::npos ? rest
                                                     : rest.substr(0, paren));
  size_t sep = qual.find("::");
  if (sep == std::string::npos || sep == 0 || sep + 2 >= qual.size()) {
    return Status::InvalidArgument(
        "event signature needs Class::Method, got '" + qual + "'");
  }
  sig.class_name = qual.substr(0, sep);
  sig.method = qual.substr(sep + 2);
  for (const std::string* part : {&sig.class_name, &sig.method}) {
    for (char c : *part) {
      if (!IsNameChar(c)) {
        return Status::InvalidArgument("bad character '" +
                                       std::string(1, c) +
                                       "' in event signature '" + text + "'");
      }
    }
  }

  // Optional "(params)".
  if (paren != std::string::npos) {
    std::string tail = Trim(rest.substr(paren));
    if (tail.back() != ')') {
      return Status::InvalidArgument("unterminated parameter list in '" +
                                     text + "'");
    }
    std::string inside = Trim(tail.substr(1, tail.size() - 2));
    size_t start = 0;
    while (start < inside.size()) {
      size_t comma = inside.find(',', start);
      std::string p = Trim(inside.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (!p.empty()) sig.params.push_back(p);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return sig;
}

std::string EventSignature::ToString() const {
  std::string out = sentinel::ToString(modifier);
  out += ' ';
  out += class_name;
  out += "::";
  out += method;
  out += '(';
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    out += params[i];
  }
  out += ')';
  return out;
}

std::string EventSignature::Key() const {
  return EventKey(modifier, class_name, method);
}

}  // namespace sentinel
