// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Transaction context. The paper requires rules and events to be "subject to
// the same transaction semantics" as other objects (§3.4) and rule actions
// may abort the triggering transaction (Fig. 9), so a transaction carries:
//
//  * a buffered write set (no-steal: the heap is only touched at commit),
//  * in-memory undo closures so aborting also rolls back the attribute state
//    of live reactive C++ objects mutated inside the transaction,
//  * queues of deferred work (rules with Deferred coupling run at the commit
//    point) and detached work (rules with Detached coupling run in a fresh
//    transaction after this one commits).

#ifndef SENTINEL_TXN_TRANSACTION_H_
#define SENTINEL_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"

namespace sentinel {

/// Lifecycle state of a transaction.
enum class TxnState { kActive, kCommitted, kAborted };

/// One buffered write awaiting commit.
struct PendingWrite {
  enum class Op { kPut, kDelete };
  Op op = Op::kPut;
  std::string payload;  ///< Serialized object image for kPut.
};

/// A unit of atomic work. Created by TransactionManager::Begin and finished
/// by Commit/Abort exactly once. Not thread safe (one owner thread).
class Transaction {
 public:
  Transaction(TxnId id, LockManager* locks) : id_(id), locks_(locks) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  /// Marks this transaction as doomed; Commit will refuse and Abort is the
  /// only exit. Rule actions call this to reject the triggering update
  /// (the paper's `abort` action).
  void RequestAbort(std::string reason);
  bool abort_requested() const { return abort_requested_; }
  const std::string& abort_reason() const { return abort_reason_; }

  /// Acquires a lock via the shared lock manager (strict 2PL).
  Status Lock(uint64_t resource, LockMode mode) {
    locked_any_ = true;
    return locks_->Lock(id_, resource, mode);
  }

  /// True once this txn touched the lock manager. Commit/Abort skip the
  /// (globally serialized) ReleaseAll for lock-free transactions — the
  /// common case on the raise path, which would otherwise contend every
  /// shard on the lock manager's mutex.
  bool locked_any() const { return locked_any_; }

  // --- Write set -----------------------------------------------------------

  /// Buffers a create-or-update of `oid`.
  void StagePut(uint64_t oid, std::string payload);
  /// Buffers a delete of `oid`.
  void StageDelete(uint64_t oid);
  /// Looks up a buffered write; nullptr if this txn has not touched `oid`.
  const PendingWrite* FindWrite(uint64_t oid) const;
  const std::map<uint64_t, PendingWrite>& write_set() const {
    return writes_;
  }

  // --- In-memory undo ------------------------------------------------------

  /// Registers a closure run (in reverse order) if this txn aborts; used to
  /// restore live reactive objects' attributes.
  void AddUndo(std::function<void()> undo);
  /// Runs and clears the undo list (newest first).
  void RunUndos();

  // --- Rule-coupling work queues ------------------------------------------

  /// Enqueues work to run at the commit point (Deferred coupling).
  void AddDeferred(std::function<Status()> work);
  /// Enqueues work to run after commit in a new transaction (Detached).
  void AddDetached(std::function<Status()> work);

  /// Drains the deferred queue; stops at the first non-OK status. Deferred
  /// work may enqueue further deferred work (cascading rules); the loop runs
  /// to a fixpoint bounded by `max_rounds` enqueued items.
  Status RunDeferred(size_t max_rounds = 100000);

  /// Moves out the detached queue (the manager runs it post-commit).
  std::vector<std::function<Status()>> TakeDetached();

  bool HasDeferred() const { return !deferred_.empty(); }

 private:
  friend class TransactionManager;

  TxnId id_;
  LockManager* locks_;
  TxnState state_ = TxnState::kActive;
  bool abort_requested_ = false;
  bool locked_any_ = false;
  std::string abort_reason_;

  std::map<uint64_t, PendingWrite> writes_;
  std::vector<std::function<void()>> undos_;
  std::vector<std::function<Status()>> deferred_;
  std::vector<std::function<Status()>> detached_;
};

}  // namespace sentinel

#endif  // SENTINEL_TXN_TRANSACTION_H_
