// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/transaction_manager.h"

#include "common/failpoint.h"
#include "common/logging.h"

namespace sentinel {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  TxnId id = next_id_.fetch_add(1);
  return std::make_unique<Transaction>(id, locks_);
}

Status TransactionManager::DoAbort(Transaction* txn, const std::string& why,
                                   bool sync_abort) {
  txn->RunUndos();
  txn->writes_.clear();
  txn->deferred_.clear();
  txn->detached_.clear();
  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.txn = txn->id();
    // Best effort: the abort record neutralizes any commit record this txn
    // may already have appended before its commit failed mid-WAL (recovery
    // treats commit+abort as aborted). `sync_abort` is set on that path so
    // the neutralization is as durable as the stray commit could be; if
    // appending or syncing fails too, the outcome is crash-indeterminate —
    // which is what the caller was already told.
    if (wal_->Append(rec).ok() && sync_abort) SyncWal().ok();
  }
  if (txn->locked_any()) locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kAborted;
  metrics::Add(m_aborts_);
  SENTINEL_DEBUG << "txn " << txn->id() << " aborted: " << why;
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) {
    return Status::FailedPrecondition("abort of finished transaction");
  }
  return DoAbort(txn, txn->abort_requested() ? txn->abort_reason()
                                             : "user abort");
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) {
    return Status::FailedPrecondition("commit of finished transaction");
  }
  {
    Status fp = Status::OK();
    if (FailPoints::AnyActive()) {
      fp = FailPoints::Instance().Check("txn.commit.begin");
    }
    if (!fp.ok()) {
      DoAbort(txn, "commit failed at entry: " + fp.ToString());
      return fp;
    }
  }
  // After a sync failure the log is poisoned (the kernel may have dropped
  // dirty pages without saying which): refuse up front instead of
  // appending records that can never be made durable.
  if (wal_ != nullptr && wal_->sync_failed()) {
    Status sticky = Status::IOError(
        "wal sync previously failed; reopen required before further "
        "commits");
    DoAbort(txn, sticky.ToString());
    return sticky;
  }

  // (1) Deferred rule work runs at the commit point, still inside the txn.
  Status deferred = txn->RunDeferred();
  if (!deferred.ok()) {
    DoAbort(txn, "deferred rule failed: " + deferred.ToString());
    return deferred.IsAborted()
               ? deferred
               : Status::Aborted("deferred rule failed: " +
                                 deferred.ToString());
  }

  // (2) A rule action may have vetoed the transaction.
  if (txn->abort_requested()) {
    std::string reason = txn->abort_reason();
    DoAbort(txn, reason);
    return Status::Aborted(reason);
  }

  // (3) Make the write set durable before touching the heap. Any WAL
  // failure here aborts the transaction — returning with the txn still
  // active would leak its locks and strand the caller (a bug the crash-
  // torture harness flushed out). The abort path appends a synced abort
  // record so a commit record that did reach the log cannot be replayed.
  //
  // The apply barrier is held shared from the first WAL append until the
  // heap apply in (4) finishes: a fuzzy checkpoint acquiring it exclusive
  // after capturing a stable LSN thereby waits out every commit whose
  // records it is about to truncate (see apply_barrier()).
  std::shared_lock<std::shared_mutex> apply_guard(apply_barrier_);
  if (wal_ != nullptr && !txn->write_set().empty()) {
    Status wal_status = [&]() -> Status {
      WalRecord rec;
      rec.type = WalRecordType::kBegin;
      rec.txn = txn->id();
      SENTINEL_RETURN_IF_ERROR(wal_->Append(rec));
      for (const auto& [oid, write] : txn->write_set()) {
        WalRecord op;
        op.txn = txn->id();
        op.oid = oid;
        if (write.op == PendingWrite::Op::kPut) {
          op.type = WalRecordType::kPut;
          op.payload = write.payload;
        } else {
          op.type = WalRecordType::kDelete;
        }
        SENTINEL_RETURN_IF_ERROR(wal_->Append(op));
      }
      WalRecord commit;
      commit.type = WalRecordType::kCommit;
      commit.txn = txn->id();
      SENTINEL_RETURN_IF_ERROR(wal_->Append(commit));
      return SyncWal();
    }();
    if (!wal_status.ok()) {
      DoAbort(txn, "commit WAL write failed: " + wal_status.ToString(),
              /*sync_abort=*/true);
      return wal_status;
    }
  }
  // The commit record is durable past this point: whatever fails from here
  // on, the transaction is logically committed — recovery will redo it.
  Status apply_error = Status::OK();
  if (FailPoints::AnyActive()) {
    apply_error = FailPoints::Instance().Check("txn.commit.durable");
  }

  // (4) Install the writes. Surface the first error but still finish the
  // commit — in particular the locks MUST be released either way.
  if (apply_error.ok() && heap_ != nullptr) {
    for (const auto& [oid, write] : txn->write_set()) {
      Status s = write.op == PendingWrite::Op::kPut
                     ? heap_->ApplyPut(oid, write.payload)
                     : heap_->ApplyDelete(oid);
      if (!s.ok() && apply_error.ok()) {
        SENTINEL_ERROR << "heap apply failed post-commit: " << s.ToString();
        apply_error = s;
      }
    }
  }

  // The heap now holds the write set: the checkpointer may flush and
  // truncate past this commit. Released before (6) — detached work commits
  // fresh transactions on this thread, and re-acquiring the barrier shared
  // while a checkpointer waits exclusive would deadlock.
  apply_guard.unlock();

  // (5) Done: release locks.
  if (txn->locked_any()) locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kCommitted;
  metrics::Add(m_commits_);
  if (!apply_error.ok()) return apply_error;

  // (6) Detached rule work: each closure runs logically in its own
  // transaction; the closures themselves Begin/Commit via the database
  // facade, so here we just invoke them.
  auto detached = txn->TakeDetached();
  for (auto& work : detached) {
    Status s = work();
    if (!s.ok()) {
      SENTINEL_WARN << "detached rule failed: " << s.ToString();
    }
  }
  return Status::OK();
}

}  // namespace sentinel
