// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/transaction_manager.h"

#include "common/logging.h"

namespace sentinel {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  TxnId id = next_id_.fetch_add(1);
  return std::make_unique<Transaction>(id, locks_);
}

Status TransactionManager::DoAbort(Transaction* txn, const std::string& why) {
  txn->RunUndos();
  txn->writes_.clear();
  txn->deferred_.clear();
  txn->detached_.clear();
  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.txn = txn->id();
    wal_->Append(rec).ok();  // Abort records are advisory under redo-only.
  }
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kAborted;
  SENTINEL_DEBUG << "txn " << txn->id() << " aborted: " << why;
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) {
    return Status::FailedPrecondition("abort of finished transaction");
  }
  return DoAbort(txn, txn->abort_requested() ? txn->abort_reason()
                                             : "user abort");
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) {
    return Status::FailedPrecondition("commit of finished transaction");
  }

  // (1) Deferred rule work runs at the commit point, still inside the txn.
  Status deferred = txn->RunDeferred();
  if (!deferred.ok()) {
    DoAbort(txn, "deferred rule failed: " + deferred.ToString());
    return deferred.IsAborted()
               ? deferred
               : Status::Aborted("deferred rule failed: " +
                                 deferred.ToString());
  }

  // (2) A rule action may have vetoed the transaction.
  if (txn->abort_requested()) {
    std::string reason = txn->abort_reason();
    DoAbort(txn, reason);
    return Status::Aborted(reason);
  }

  // (3) Make the write set durable before touching the heap.
  if (wal_ != nullptr && !txn->write_set().empty()) {
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    rec.txn = txn->id();
    SENTINEL_RETURN_IF_ERROR(wal_->Append(rec));
    for (const auto& [oid, write] : txn->write_set()) {
      WalRecord op;
      op.txn = txn->id();
      op.oid = oid;
      if (write.op == PendingWrite::Op::kPut) {
        op.type = WalRecordType::kPut;
        op.payload = write.payload;
      } else {
        op.type = WalRecordType::kDelete;
      }
      SENTINEL_RETURN_IF_ERROR(wal_->Append(op));
    }
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn = txn->id();
    SENTINEL_RETURN_IF_ERROR(wal_->Append(commit));
    SENTINEL_RETURN_IF_ERROR(wal_->Sync());
  }

  // (4) Install the writes. The commit record is already durable, so the
  // transaction is logically committed even if an apply fails (recovery
  // redoes it); surface the first error but still finish the commit — in
  // particular the locks MUST be released either way.
  Status apply_error = Status::OK();
  if (heap_ != nullptr) {
    for (const auto& [oid, write] : txn->write_set()) {
      Status s = write.op == PendingWrite::Op::kPut
                     ? heap_->ApplyPut(oid, write.payload)
                     : heap_->ApplyDelete(oid);
      if (!s.ok() && apply_error.ok()) {
        SENTINEL_ERROR << "heap apply failed post-commit: " << s.ToString();
        apply_error = s;
      }
    }
  }

  // (5) Done: release locks.
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kCommitted;
  if (!apply_error.ok()) return apply_error;

  // (6) Detached rule work: each closure runs logically in its own
  // transaction; the closures themselves Begin/Commit via the database
  // facade, so here we just invoke them.
  auto detached = txn->TakeDetached();
  for (auto& work : detached) {
    Status s = work();
    if (!s.ok()) {
      SENTINEL_WARN << "detached rule failed: " << s.ToString();
    }
  }
  return Status::OK();
}

}  // namespace sentinel
