// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/codec.h"
#include "common/failpoint.h"

namespace sentinel {

WalManager::~WalManager() { Close().ok(); }

Status WalManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) return Status::FailedPrecondition("wal already open");
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  std::fclose(probe);
  file_ = std::fopen(path.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::fseek(file_, 0, SEEK_END);
  path_ = path;
  return Status::OK();
}

Status WalManager::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  if (FailPoints::AnyActive() && FailPoints::Instance().crashed()) {
    // Simulated crash: drop buffered-but-unsynced appends instead of
    // letting fclose flush them (see DiskManager::Close).
    ::close(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
    return Status::OK();
  }
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Status WalManager::Append(const WalRecord& record) {
  Encoder body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutU64(record.txn);
  body.PutU64(record.oid);
  body.PutString(record.payload);

  Encoder framed;
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutRaw(body.buffer().data(), body.size());

  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (FailPoints::AnyActive()) {
    size_t partial = 0;
    Status fp = FailPoints::Instance().Check("wal.append", &partial);
    if (!fp.ok()) {
      if (partial > 0) {
        // Torn write: the first `partial` bytes of the framed record reach
        // the file (and the OS — the crash, not the buffer, ate the rest).
        std::fwrite(framed.buffer().data(), 1,
                    std::min(partial, framed.size()), file_);
        std::fflush(file_);
      }
      return fp;
    }
  }
  if (std::fwrite(framed.buffer().data(), 1, framed.size(), file_) !=
      framed.size()) {
    return Status::IOError("wal append failed");
  }
  return Status::OK();
}

Status WalManager::Sync() {
  SENTINEL_FAILPOINT("wal.sync");
  const int64_t start = metrics::TimerStart(m_sync_ns_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (std::fflush(file_) != 0) return Status::IOError("wal flush failed");
  metrics::RecordSince(m_sync_ns_, start);
  return Status::OK();
}

Status WalManager::ReadAll(std::vector<WalRecord>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  out->clear();
  std::fflush(file_);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("wal seek failed");
  }
  for (;;) {
    uint32_t len = 0;
    size_t got = std::fread(&len, 1, 4, file_);
    if (got < 4) break;  // Clean end or torn length: stop.
    std::string body(len, '\0');
    got = std::fread(body.data(), 1, len, file_);
    if (got < len) break;  // Torn record body: stop (crash tail).
    Decoder dec(body);
    WalRecord rec;
    uint8_t type = 0;
    Status s = dec.GetU8(&type);
    if (s.ok()) s = dec.GetU64(&rec.txn);
    if (s.ok()) s = dec.GetU64(&rec.oid);
    if (s.ok()) s = dec.GetString(&rec.payload);
    if (!s.ok()) break;  // Malformed body: treat as torn tail.
    rec.type = static_cast<WalRecordType>(type);
    out->push_back(std::move(rec));
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Status WalManager::Reset() {
  SENTINEL_FAILPOINT("wal.reset");
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IOError("wal reset failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<uint64_t> WalManager::SizeBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::fflush(file_);
  long pos = std::ftell(file_);
  if (pos < 0) return Status::IOError("ftell failed");
  return static_cast<uint64_t>(pos);
}

}  // namespace sentinel
