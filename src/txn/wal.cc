// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace sentinel {

namespace {

constexpr char kMagic[4] = {'S', 'W', 'A', 'L'};
constexpr uint32_t kFormatVersion = 2;
constexpr size_t kHeaderSize = 24;

/// Upper bound on one record's framed body; a claimed length beyond this is
/// treated as tail garbage rather than attempted as an allocation.
constexpr uint32_t kMaxRecordBody = 64u << 20;

/// Best-effort fsync of the directory containing `path`, so a just-renamed
/// file survives a crash of the directory entry itself.
void SyncParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string EncodeHeader(uint64_t base_lsn) {
  Encoder enc;
  enc.PutRaw(kMagic, 4);
  enc.PutU32(kFormatVersion);
  enc.PutU64(base_lsn);
  uint32_t crc = Crc32c(enc.buffer().data(), enc.size());
  enc.PutU32(crc);
  enc.PutU32(0);  // Pad to kHeaderSize.
  return enc.Release();
}

}  // namespace

WalManager::~WalManager() { Close().ok(); }

Status WalManager::WriteHeader(std::FILE* f, uint64_t base_lsn) {
  std::string header = EncodeHeader(base_lsn);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return Status::IOError("wal header write failed");
  }
  if (std::fflush(f) != 0) return Status::IOError("wal header flush failed");
  return Status::OK();
}

Status WalManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) return Status::FailedPrecondition("wal already open");
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  std::fclose(probe);
  file_ = std::fopen(path.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);

  if (size == 0) {
    // Fresh log: version-2 header, records start at LSN 0.
    format_version_ = kFormatVersion;
    header_size_ = kHeaderSize;
    base_lsn_ = 0;
    Status s = WriteHeader(file_, 0);
    if (!s.ok()) {
      std::fclose(file_);
      file_ = nullptr;
      return s;
    }
    return Status::OK();
  }

  // Existing log: versioned header, or a legacy headerless (v1) file.
  std::fseek(file_, 0, SEEK_SET);
  char magic[4] = {0, 0, 0, 0};
  size_t got = std::fread(magic, 1, 4, file_);
  if (got == 4 && std::memcmp(magic, kMagic, 4) == 0) {
    std::string rest(kHeaderSize - 4, '\0');
    if (std::fread(rest.data(), 1, rest.size(), file_) != rest.size()) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Corruption("wal header truncated");
    }
    Decoder dec(rest);
    uint32_t version = 0, stored_crc = 0;
    uint64_t base = 0;
    dec.GetU32(&version).ok();
    dec.GetU64(&base).ok();
    dec.GetU32(&stored_crc).ok();
    uint32_t crc = Crc32c(kMagic, 4);
    crc = ExtendCrc32c(crc, rest.data(), 12);  // version + base_lsn.
    if (crc != stored_crc) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Corruption("wal header crc mismatch");
    }
    if (version == 0 || version > kFormatVersion) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Corruption("unsupported wal version " +
                                std::to_string(version));
    }
    format_version_ = version;
    header_size_ = kHeaderSize;
    base_lsn_ = base;
  } else {
    // No header: a log written before versioning. Records carry no CRC;
    // keep appending in the same frame format so replay stays uniform —
    // the next Reset/TruncateTo rewrites the file as version 2.
    format_version_ = 1;
    header_size_ = 0;
    base_lsn_ = 0;
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Status WalManager::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  if (FailPoints::AnyActive() && FailPoints::Instance().crashed()) {
    // Simulated crash: drop buffered-but-unsynced appends instead of
    // letting fclose flush them (see DiskManager::Close).
    ::close(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
    return Status::OK();
  }
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Status WalManager::Append(const WalRecord& record) {
  Encoder body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutU64(record.txn);
  body.PutU64(record.oid);
  body.PutString(record.payload);

  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  // Framed under the lock: the record format follows the file's version,
  // which TruncateTo may upgrade concurrently.
  Encoder framed;
  framed.PutU32(static_cast<uint32_t>(body.size()));
  if (format_version_ >= 2) {
    framed.PutU32(Crc32c(body.buffer().data(), body.size()));
  }
  framed.PutRaw(body.buffer().data(), body.size());
  if (FailPoints::AnyActive()) {
    size_t partial = 0;
    Status fp = FailPoints::Instance().Check("wal.append", &partial);
    if (!fp.ok()) {
      if (partial > 0) {
        // Torn write: the first `partial` bytes of the framed record reach
        // the file (and the OS — the crash, not the buffer, ate the rest).
        std::fwrite(framed.buffer().data(), 1,
                    std::min(partial, framed.size()), file_);
        std::fflush(file_);
      }
      return fp;
    }
  }
  if (std::fwrite(framed.buffer().data(), 1, framed.size(), file_) !=
      framed.size()) {
    return Status::IOError("wal append failed");
  }
  return Status::OK();
}

Status WalManager::Sync() {
  if (sync_failed_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "wal sync previously failed; reopen required before further "
        "commits");
  }
  Status injected = Status::OK();
  if (FailPoints::AnyActive()) {
    injected = FailPoints::Instance().Check("wal.sync");
  }
  if (!injected.ok()) {
    sync_failed_.store(true, std::memory_order_release);
    return injected;
  }
  const int64_t start = metrics::TimerStart(m_sync_ns_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (std::fflush(file_) != 0) {
    sync_failed_.store(true, std::memory_order_release);
    return Status::IOError("wal flush failed");
  }
  if (::fdatasync(fileno(file_)) != 0) {
    sync_failed_.store(true, std::memory_order_release);
    return Status::IOError("wal fsync failed: " +
                           std::string(std::strerror(errno)));
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  metrics::RecordSince(m_sync_ns_, start);
  return Status::OK();
}

Status WalManager::ReadAll(std::vector<WalRecord>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  out->clear();
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long file_size = std::ftell(file_);
  if (std::fseek(file_, static_cast<long>(header_size_), SEEK_SET) != 0) {
    return Status::IOError("wal seek failed");
  }
  const bool with_crc = format_version_ >= 2;
  const size_t frame_overhead = with_crc ? 8 : 4;
  long pos = static_cast<long>(header_size_);
  Status result = Status::OK();
  for (;;) {
    uint32_t len = 0;
    size_t got = std::fread(&len, 1, 4, file_);
    if (got < 4) break;  // Clean end or torn length: stop.
    uint64_t remaining = static_cast<uint64_t>(file_size - pos);
    if (len > kMaxRecordBody || frame_overhead + len > remaining) {
      break;  // Torn record (claims more bytes than exist): crash tail.
    }
    uint32_t stored_crc = 0;
    if (with_crc && std::fread(&stored_crc, 1, 4, file_) < 4) break;
    std::string record_body(len, '\0');
    got = std::fread(record_body.data(), 1, len, file_);
    if (got < len) break;  // Torn record body: stop (crash tail).
    if (with_crc && Crc32c(record_body) != stored_crc) {
      // The record is fully present but its bytes are wrong: this is
      // media/software corruption, not a crash tail — surface it rather
      // than replaying garbage (or silently dropping valid records that
      // may follow).
      result = Status::Corruption(
          "wal record crc mismatch at lsn " +
          std::to_string(base_lsn_ + (pos - header_size_)));
      break;
    }
    Decoder dec(record_body);
    WalRecord rec;
    uint8_t type = 0;
    Status s = dec.GetU8(&type);
    if (s.ok()) s = dec.GetU64(&rec.txn);
    if (s.ok()) s = dec.GetU64(&rec.oid);
    if (s.ok()) s = dec.GetString(&rec.payload);
    if (!s.ok()) {
      if (with_crc) {
        // CRC passed but the body does not decode: structural corruption.
        result = Status::Corruption("malformed wal record at lsn " +
                                    std::to_string(base_lsn_ +
                                                   (pos - header_size_)));
      }
      break;  // v1: indistinguishable from a torn tail.
    }
    rec.type = static_cast<WalRecordType>(type);
    out->push_back(std::move(rec));
    pos += static_cast<long>(frame_overhead + len);
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Status WalManager::ReadFrom(uint64_t from_lsn, size_t max_records,
                            std::vector<WalRecord>* out,
                            uint64_t* next_lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  out->clear();
  *next_lsn = from_lsn;
  if (from_lsn < base_lsn_) {
    return Status::OutOfRange("lsn " + std::to_string(from_lsn) +
                              " truncated away (base " +
                              std::to_string(base_lsn_) + ")");
  }
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long file_size = std::ftell(file_);
  long pos = static_cast<long>(header_size_ + (from_lsn - base_lsn_));
  if (pos > file_size) {
    return Status::OutOfRange("lsn " + std::to_string(from_lsn) +
                              " past the log end");
  }
  if (std::fseek(file_, pos, SEEK_SET) != 0) {
    return Status::IOError("wal seek failed");
  }
  const bool with_crc = format_version_ >= 2;
  const size_t frame_overhead = with_crc ? 8 : 4;
  Status result = Status::OK();
  while (out->size() < max_records) {
    uint32_t len = 0;
    size_t got = std::fread(&len, 1, 4, file_);
    if (got < 4) break;  // Clean end or torn length: stop.
    uint64_t remaining = static_cast<uint64_t>(file_size - pos);
    if (len > kMaxRecordBody || frame_overhead + len > remaining) break;
    uint32_t stored_crc = 0;
    if (with_crc && std::fread(&stored_crc, 1, 4, file_) < 4) break;
    std::string record_body(len, '\0');
    got = std::fread(record_body.data(), 1, len, file_);
    if (got < len) break;
    if (with_crc && Crc32c(record_body) != stored_crc) {
      result = Status::Corruption(
          "wal record crc mismatch at lsn " +
          std::to_string(base_lsn_ + (pos - header_size_)));
      break;
    }
    Decoder dec(record_body);
    WalRecord rec;
    uint8_t type = 0;
    Status s = dec.GetU8(&type);
    if (s.ok()) s = dec.GetU64(&rec.txn);
    if (s.ok()) s = dec.GetU64(&rec.oid);
    if (s.ok()) s = dec.GetString(&rec.payload);
    if (!s.ok()) {
      if (with_crc) {
        result = Status::Corruption("malformed wal record at lsn " +
                                    std::to_string(base_lsn_ +
                                                   (pos - header_size_)));
      }
      break;
    }
    rec.type = static_cast<WalRecordType>(type);
    out->push_back(std::move(rec));
    pos += static_cast<long>(frame_overhead + len);
    *next_lsn = base_lsn_ + (pos - header_size_);
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Result<uint64_t> WalManager::BaseLsn() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  return base_lsn_;
}

Result<uint64_t> WalManager::CurrentLsn() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  long pos = std::ftell(file_);
  if (pos < 0) return Status::IOError("ftell failed");
  return base_lsn_ + (static_cast<uint64_t>(pos) - header_size_);
}

Status WalManager::TruncateToLocked(uint64_t stable_lsn) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (std::fflush(file_) != 0) return Status::IOError("wal flush failed");
  long end_pos = std::ftell(file_);
  if (end_pos < 0) return Status::IOError("ftell failed");
  uint64_t end_lsn = base_lsn_ + (static_cast<uint64_t>(end_pos) -
                                  header_size_);
  if (stable_lsn < base_lsn_) {
    return Status::OK();  // Already truncated past this point.
  }
  if (stable_lsn > end_lsn) {
    return Status::InvalidArgument("truncate beyond log end");
  }

  // Read the surviving suffix [stable_lsn, end_lsn).
  long suffix_off =
      static_cast<long>(header_size_ + (stable_lsn - base_lsn_));
  std::string suffix(static_cast<size_t>(end_pos - suffix_off), '\0');
  if (std::fseek(file_, suffix_off, SEEK_SET) != 0 ||
      std::fread(suffix.data(), 1, suffix.size(), file_) != suffix.size()) {
    std::fseek(file_, 0, SEEK_END);
    return Status::IOError("wal suffix read failed");
  }
  std::fseek(file_, 0, SEEK_END);

  // Write header + suffix to a sibling, durably, then swap atomically: a
  // crash at any point leaves either the whole old log or the truncated
  // one — never a half-rewritten file.
  std::string tmp_path = path_ + ".tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) {
    return Status::IOError("wal truncate: cannot create " + tmp_path);
  }
  std::string header = EncodeHeader(stable_lsn);
  bool wrote = std::fwrite(header.data(), 1, header.size(), tmp) ==
                   header.size() &&
               (suffix.empty() ||
                std::fwrite(suffix.data(), 1, suffix.size(), tmp) ==
                    suffix.size()) &&
               std::fflush(tmp) == 0 && ::fdatasync(fileno(tmp)) == 0;
  std::fclose(tmp);
  if (!wrote) {
    std::remove(tmp_path.c_str());
    return Status::IOError("wal truncate: tmp write failed");
  }
  SENTINEL_FAILPOINT("wal.truncate.rename");
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    Status rename_error = Status::IOError(
        "wal truncate rename failed: " + std::string(std::strerror(errno)));
    file_ = std::fopen(path_.c_str(), "r+b");  // Old log is still intact.
    if (file_ != nullptr) std::fseek(file_, 0, SEEK_END);
    return rename_error;
  }
  SyncParentDir(path_);
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::IOError("wal truncate reopen failed");
  }
  std::fseek(file_, 0, SEEK_END);
  uint64_t dropped = stable_lsn - base_lsn_;
  format_version_ = kFormatVersion;
  header_size_ = kHeaderSize;
  base_lsn_ = stable_lsn;
  metrics::Add(m_truncated_bytes_, dropped);
  return Status::OK();
}

Status WalManager::TruncateTo(uint64_t stable_lsn) {
  SENTINEL_FAILPOINT("wal.truncate");
  std::lock_guard<std::mutex> lock(mutex_);
  return TruncateToLocked(stable_lsn);
}

Status WalManager::Reset() {
  SENTINEL_FAILPOINT("wal.reset");
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::fflush(file_);
  long pos = std::ftell(file_);
  if (pos < 0) return Status::IOError("ftell failed");
  return TruncateToLocked(base_lsn_ +
                          (static_cast<uint64_t>(pos) - header_size_));
}

Result<uint64_t> WalManager::SizeBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::fflush(file_);
  long pos = std::ftell(file_);
  if (pos < 0) return Status::IOError("ftell failed");
  return static_cast<uint64_t>(pos) - header_size_;
}

}  // namespace sentinel
