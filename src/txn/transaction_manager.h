// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Coordinates transaction begin/commit/abort against the WAL, lock manager,
// and the object heap. Commit protocol (no-steal / redo-only):
//
//   1. run deferred rule work (Deferred coupling); any failure aborts,
//   2. refuse if a rule action requested abort,
//   3. WAL: Begin + one Put/Delete per buffered write + Commit, then fsync
//      (any WAL failure aborts the txn, appending a synced abort record so
//      a stray commit record cannot be replayed),
//   4. apply the write set to the heap (via HeapApplier); the txn is
//      logically committed once step 3 finished, apply failures are
//      surfaced but recovery redoes the writes,
//   5. release locks, mark committed,
//   6. run detached rule work, each closure in its own new transaction.

#ifndef SENTINEL_TXN_TRANSACTION_MANAGER_H_
#define SENTINEL_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>

#include "common/metrics.h"
#include "common/status.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "txn/wal.h"

namespace sentinel {

/// Where committed writes land. Implemented by oodb::ObjectStore; abstracted
/// so the txn layer has no dependency on the object layer.
class HeapApplier {
 public:
  virtual ~HeapApplier() = default;
  /// Installs a committed create-or-update.
  virtual Status ApplyPut(uint64_t oid, const std::string& payload) = 0;
  /// Installs a committed delete.
  virtual Status ApplyDelete(uint64_t oid) = 0;
};

/// Factory/committer for transactions. Thread safe for Begin; each
/// Transaction itself is single-owner.
class TransactionManager {
 public:
  TransactionManager(WalManager* wal, LockManager* locks)
      : wal_(wal), locks_(locks) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Sets the heap that receives committed writes. Must be called before the
  /// first Commit.
  void SetHeap(HeapApplier* heap) { heap_ = heap; }

  /// Starts a new transaction.
  std::unique_ptr<Transaction> Begin();

  /// Runs the commit protocol. On any failure the transaction is aborted
  /// (undo closures run, locks released) and a non-OK status is returned.
  Status Commit(Transaction* txn);

  /// Rolls back: runs undo closures, drops the write set, releases locks.
  Status Abort(Transaction* txn);

  /// Number of transactions started (for tests/benches).
  uint64_t begun_count() const { return next_id_.load() - 1; }

  /// Tallies every commit into txn.commits and every abort — user aborts
  /// and commit-path failures alike — into txn.aborts.
  void SetMetrics(MetricsRegistry* registry) {
    m_commits_ = registry->counter("txn.commits");
    m_aborts_ = registry->counter("txn.aborts");
  }

  /// Replaces the commit-path durability sync (WalManager::Sync by
  /// default). The ObjectStore installs GroupCommitSync here so concurrent
  /// commits across raise shards share one fdatasync.
  void SetSyncHook(std::function<Status()> hook) {
    sync_hook_ = std::move(hook);
  }

  /// The fuzzy-checkpoint apply barrier. Each commit holds it shared from
  /// its first WAL append until its heap apply finishes; the checkpointer
  /// acquires it exclusive (momentarily) after capturing the stable LSN,
  /// proving every commit logged below that LSN has reached the heap —
  /// which makes truncating those records safe once the pool flushes.
  std::shared_mutex* apply_barrier() { return &apply_barrier_; }

  LockManager* locks() { return locks_; }

 private:
  /// Abort without consuming abort_requested (shared by Commit failure
  /// path). `sync_abort` forces the abort record to disk — used when a
  /// commit record may already have reached the log and must be durably
  /// neutralized.
  Status DoAbort(Transaction* txn, const std::string& why,
                 bool sync_abort = false);

  /// Durability sync for the commit path (group commit when installed).
  Status SyncWal() { return sync_hook_ ? sync_hook_() : wal_->Sync(); }

  WalManager* wal_;
  LockManager* locks_;
  HeapApplier* heap_ = nullptr;
  std::function<Status()> sync_hook_;
  std::shared_mutex apply_barrier_;
  std::atomic<TxnId> next_id_{1};
  Counter* m_commits_ = nullptr;
  Counter* m_aborts_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_TXN_TRANSACTION_MANAGER_H_
