// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/transaction.h"

namespace sentinel {

void Transaction::RequestAbort(std::string reason) {
  if (!abort_requested_) {
    abort_requested_ = true;
    abort_reason_ = std::move(reason);
  }
}

void Transaction::StagePut(uint64_t oid, std::string payload) {
  writes_[oid] = PendingWrite{PendingWrite::Op::kPut, std::move(payload)};
}

void Transaction::StageDelete(uint64_t oid) {
  writes_[oid] = PendingWrite{PendingWrite::Op::kDelete, {}};
}

const PendingWrite* Transaction::FindWrite(uint64_t oid) const {
  auto it = writes_.find(oid);
  return it == writes_.end() ? nullptr : &it->second;
}

void Transaction::AddUndo(std::function<void()> undo) {
  undos_.push_back(std::move(undo));
}

void Transaction::RunUndos() {
  for (auto it = undos_.rbegin(); it != undos_.rend(); ++it) (*it)();
  undos_.clear();
}

void Transaction::AddDeferred(std::function<Status()> work) {
  deferred_.push_back(std::move(work));
}

void Transaction::AddDetached(std::function<Status()> work) {
  detached_.push_back(std::move(work));
}

Status Transaction::RunDeferred(size_t max_rounds) {
  size_t executed = 0;
  // Deferred work can enqueue more deferred work (cascaded rules); process
  // the queue to a fixpoint with a hard bound against non-terminating
  // cascades.
  size_t cursor = 0;
  while (cursor < deferred_.size()) {
    if (++executed > max_rounds) {
      return Status::Aborted("deferred rule cascade exceeded bound");
    }
    Status s = deferred_[cursor]();
    ++cursor;
    if (!s.ok()) {
      deferred_.clear();
      return s;
    }
  }
  deferred_.clear();
  return Status::OK();
}

std::vector<std::function<Status()>> Transaction::TakeDetached() {
  return std::move(detached_);
}

}  // namespace sentinel
