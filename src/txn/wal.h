// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Write-ahead log with redo-only recovery.
//
// Sentinel's object store applies a transaction's writes to the heap only
// after the commit record is durable (a no-steal policy), so recovery never
// needs undo: it replays the operations of committed transactions in log
// order and ignores everything else. Log records are length-prefixed and
// CRC-free (a torn tail is detected by the length check and truncated).

#ifndef SENTINEL_TXN_WAL_H_
#define SENTINEL_TXN_WAL_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "txn/lock_manager.h"

namespace sentinel {

/// Kind of one WAL record.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kPut = 4,      ///< Create-or-update object: payload = serialized object.
  kDelete = 5,   ///< Delete object.
  kCheckpoint = 6,
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn = 0;
  uint64_t oid = 0;       ///< For kPut/kDelete.
  std::string payload;    ///< For kPut: serialized object bytes.
};

/// Append-only log file plus replay support.
class WalManager {
 public:
  WalManager() = default;
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Opens (creating if absent) the log at `path`.
  Status Open(const std::string& path);
  Status Close();

  /// Appends one record (buffered; see Sync).
  Status Append(const WalRecord& record);

  /// Forces the log to disk. Called before acking a commit.
  Status Sync();

  /// Records every Sync's latency into txn.wal_sync_ns. Set once at open;
  /// covers all sync paths (user commits, system mini-txns, abort records).
  void SetMetrics(MetricsRegistry* registry) {
    m_sync_ns_ = registry->histogram("txn.wal_sync_ns");
  }

  /// Reads every well-formed record from the start of the log. A torn tail
  /// stops the scan without error (crash semantics).
  Status ReadAll(std::vector<WalRecord>* out);

  /// Truncates the log (after a checkpoint has made the heap current).
  Status Reset();

  /// Bytes currently in the log file (for tests/benches).
  Result<uint64_t> SizeBytes();

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Histogram* m_sync_ns_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_TXN_WAL_H_
