// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Write-ahead log with redo-only recovery.
//
// Sentinel's object store applies a transaction's writes to the heap only
// after the commit record is durable (a no-steal policy), so recovery never
// needs undo: it replays the operations of committed transactions in log
// order and ignores everything else.
//
// On-disk format (version 2):
//
//   [header: "SWAL" | u32 version | u64 base_lsn | u32 crc | u32 pad]
//   [record]*   record = [u32 body_len][u32 crc32c(body)][body]
//
// `base_lsn` is the logical offset of the first record byte: LSNs are
// logical log offsets that stay monotone across truncations, so a stable
// LSN captured before a checkpoint still names the same boundary after the
// prefix behind it is dropped. A torn tail is detected by the length check
// and truncated; a corrupted *middle* record fails its CRC and surfaces as
// Corruption instead of silently replaying garbage. Version-1 logs (no
// header, no record CRCs — written before this format existed) are still
// replayed; the first Reset/TruncateTo rewrites them as version 2.
//
// Sync failures are sticky: after the first failed flush the log refuses
// every further Sync with IOError. A failed fsync means the kernel may have
// dropped dirty pages without telling us which — retrying would ack commits
// whose bytes silently never hit the platter. The only safe continuation is
// a reopen, which re-reads what the disk actually holds.

#ifndef SENTINEL_TXN_WAL_H_
#define SENTINEL_TXN_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "txn/lock_manager.h"

namespace sentinel {

/// Kind of one WAL record.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kPut = 4,      ///< Create-or-update object: payload = serialized object.
  kDelete = 5,   ///< Delete object.
  kCheckpoint = 6,  ///< payload = u64 stable LSN the heap is current to.
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn = 0;
  uint64_t oid = 0;       ///< For kPut/kDelete.
  std::string payload;    ///< For kPut: serialized object bytes.
};

/// Append-only log file plus replay support.
class WalManager {
 public:
  WalManager() = default;
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Opens (creating if absent) the log at `path`. A fresh log gets a
  /// version-2 header; an existing headerless log is read as version 1.
  Status Open(const std::string& path);
  Status Close();

  /// Appends one record (buffered; see Sync).
  Status Append(const WalRecord& record);

  /// Forces the log to disk (fflush + fdatasync). Called before acking a
  /// commit — normally through GroupCommitSync, which batches concurrent
  /// callers into one physical sync. Failures are sticky (see above).
  Status Sync();

  /// True once a Sync has failed; every further Sync refuses with IOError
  /// and the commit path refuses new transactions up front.
  bool sync_failed() const {
    return sync_failed_.load(std::memory_order_acquire);
  }

  /// Physical syncs performed (for group-commit tests/benches: with
  /// batching this grows slower than the commit count).
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// Records every Sync's latency into txn.wal_sync_ns and truncated bytes
  /// into storage.wal_truncated_bytes. Set once at open; covers all sync
  /// paths (user commits, system mini-txns, abort records).
  void SetMetrics(MetricsRegistry* registry) {
    m_sync_ns_ = registry->histogram("txn.wal_sync_ns");
    m_truncated_bytes_ = registry->counter("storage.wal_truncated_bytes");
  }

  /// Reads every well-formed record from the start of the log. A torn tail
  /// stops the scan without error (crash semantics); a record that is fully
  /// present but fails its CRC returns Corruption.
  Status ReadAll(std::vector<WalRecord>* out);

  /// Log-shipping read: decodes up to `max_records` records starting at
  /// logical LSN `from_lsn` and sets `*next_lsn` to the LSN one past the
  /// last record returned (pass it back to continue). `from_lsn` must be a
  /// record boundary previously handed out by CurrentLsn()/ReadFrom.
  /// OutOfRange when a checkpoint already truncated `from_lsn` away — the
  /// caller (a replication follower) must fall back to a snapshot. Only
  /// records already flushed at call time are visible; a torn tail stops
  /// the scan cleanly, exactly like ReadAll.
  Status ReadFrom(uint64_t from_lsn, size_t max_records,
                  std::vector<WalRecord>* out, uint64_t* next_lsn);

  /// The LSN of the oldest byte still in the log (advances on truncation).
  Result<uint64_t> BaseLsn();

  /// The LSN one past the last appended record (logical log offset;
  /// monotone across truncations). Everything below this is in the log —
  /// though not necessarily synced yet.
  Result<uint64_t> CurrentLsn();

  /// Drops every record below `stable_lsn` (the fuzzy-checkpoint contract:
  /// the heap must already durably contain their effects). Implemented as
  /// copy-suffix + atomic rename, so a crash mid-truncate leaves either the
  /// whole old log or the correctly truncated one. Failpoints:
  /// "wal.truncate" (entry), "wal.truncate.rename" (tmp written, not yet
  /// swapped).
  Status TruncateTo(uint64_t stable_lsn);

  /// Truncates the whole log (after recovery has made the heap current).
  /// Equivalent to TruncateTo(CurrentLsn()).
  Status Reset();

  /// Record bytes currently in the log file, excluding the header (for
  /// checkpoint thresholds, tests, and benches).
  Result<uint64_t> SizeBytes();

 private:
  /// Writes a fresh v2 header to `f` (positioned at 0). Caller holds mutex_.
  Status WriteHeader(std::FILE* f, uint64_t base_lsn);

  /// Shared tail of TruncateTo/Reset. Caller holds mutex_.
  Status TruncateToLocked(uint64_t stable_lsn);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t format_version_ = 2;  ///< 1 = legacy headerless log.
  uint64_t header_size_ = 0;     ///< 0 for v1 logs.
  uint64_t base_lsn_ = 0;        ///< LSN of the first byte after the header.
  std::atomic<bool> sync_failed_{false};
  std::atomic<uint64_t> sync_count_{0};
  Histogram* m_sync_ns_ = nullptr;
  Counter* m_truncated_bytes_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINEL_TXN_WAL_H_
