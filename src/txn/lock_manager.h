// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.
//
// Strict two-phase locking on object identifiers.
//
// Deadlock handling uses the wait-die policy: a requester older (smaller
// transaction id) than every conflicting holder waits; a younger requester
// is refused with Status::Aborted and must roll back. Locks are held until
// LockManager::ReleaseAll at commit/abort (strict 2PL), which is what makes
// rule actions executed in immediate coupling mode see a consistent state.

#ifndef SENTINEL_TXN_LOCK_MANAGER_H_
#define SENTINEL_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace sentinel {

/// Transaction identifier; monotonically increasing, lower = older.
using TxnId = uint64_t;

/// Lock strength.
enum class LockMode { kShared, kExclusive };

/// Table of per-resource S/X locks with wait-die deadlock avoidance.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `resource` for `txn`.
  /// Returns Aborted when wait-die kills the requester.
  Status Lock(TxnId txn, uint64_t resource, LockMode mode);

  /// Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds at least `mode` on `resource` (X satisfies S).
  bool Holds(TxnId txn, uint64_t resource, LockMode mode) const;

  /// Number of distinct resources currently locked (for tests).
  size_t LockedResourceCount() const;

 private:
  struct ResourceState {
    // Holders: txn -> strongest mode held.
    std::unordered_map<TxnId, LockMode> holders;
    std::condition_variable cv;
    int waiters = 0;
  };

  /// True if `txn` may be granted `mode` now.
  static bool Compatible(const ResourceState& rs, TxnId txn, LockMode mode);

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, ResourceState> table_;
  // Reverse index: txn -> resources, for O(held) release.
  std::unordered_map<TxnId, std::unordered_set<uint64_t>> held_;
};

}  // namespace sentinel

#endif  // SENTINEL_TXN_LOCK_MANAGER_H_
