// Copyright (c) 2026 The Sentinel Authors. Licensed under Apache-2.0.

#include "txn/lock_manager.h"

namespace sentinel {

bool LockManager::Compatible(const ResourceState& rs, TxnId txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : rs.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Lock(TxnId txn, uint64_t resource, LockMode mode) {
  std::unique_lock<std::mutex> lock(mutex_);
  ResourceState& rs = table_[resource];

  auto self = rs.holders.find(txn);
  if (self != rs.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Already strong enough.
    }
    // Upgrade S -> X below (falls through to the wait loop).
  }

  while (!Compatible(rs, txn, mode)) {
    // Wait-die: only wait on strictly younger conflict-free futures; if any
    // conflicting holder is older (smaller id), the requester dies.
    for (const auto& [holder, held_mode] : rs.holders) {
      if (holder == txn) continue;
      bool conflicts =
          mode == LockMode::kExclusive || held_mode == LockMode::kExclusive;
      if (conflicts && holder < txn) {
        return Status::Aborted("wait-die: txn " + std::to_string(txn) +
                               " yields to older txn " +
                               std::to_string(holder));
      }
    }
    rs.waiters++;
    rs.cv.wait(lock);
    rs.waiters--;
  }

  rs.holders[txn] = mode == LockMode::kExclusive
                        ? LockMode::kExclusive
                        : (self != rs.holders.end() ? self->second : mode);
  if (mode == LockMode::kExclusive) rs.holders[txn] = LockMode::kExclusive;
  held_[txn].insert(resource);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (uint64_t resource : it->second) {
    auto rit = table_.find(resource);
    if (rit == table_.end()) continue;
    rit->second.holders.erase(txn);
    if (rit->second.holders.empty() && rit->second.waiters == 0) {
      table_.erase(rit);
    } else {
      rit->second.cv.notify_all();
    }
  }
  held_.erase(it);
}

bool LockManager::Holds(TxnId txn, uint64_t resource, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(resource);
  if (it == table_.end()) return false;
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) return false;
  return mode == LockMode::kShared ||
         hit->second == LockMode::kExclusive;
}

size_t LockManager::LockedResourceCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [resource, rs] : table_) {
    if (!rs.holders.empty()) ++n;
  }
  return n;
}

}  // namespace sentinel
